/**
 * @file
 * Ablation A2: the DP table-indexing variants the paper flags as
 * future work (Section 2.5): "One could, perhaps, envision indexing
 * this table using the PC value together with the distance, or using a
 * set of consecutive distances."
 *
 * Three predictors are compared:
 *   DP        — index by current distance (the paper's design)
 *   DP+PC     — index by hash(PC, distance)
 *   DP+2dist  — index by hash(previous distance, current distance)
 *
 * Usage: ablation_indexing [--refs N] [--threads N] [--csv out.csv]
 *                          [--json out.json] [--workload spec,...]
 */

#include <cstdio>

#include "bench_common.hh"
#include "core/prediction_table.hh"
#include "prefetch/prefetcher.hh"
#include "sim/functional_sim.hh"
#include "util/bits.hh"
#include "util/random.hh"

namespace
{

using namespace tlbpf;
using namespace tlbpf::bench;

/** Indexing variants for the experimental distance predictor. */
enum class IndexMode
{
    Distance,    ///< the paper's DP
    PcDistance,  ///< PC hashed into the index
    TwoDistances ///< pair of consecutive distances
};

/**
 * Experimental distance prefetcher with pluggable index construction,
 * built directly on the core PredictionTable to show how variants can
 * be prototyped against the same simulator.
 */
class IndexedDistancePrefetcher : public Prefetcher
{
  public:
    IndexedDistancePrefetcher(const TableConfig &table,
                              std::uint32_t slots, IndexMode mode)
        : _mode(mode), _slots(slots), _table(table)
    {
    }

    void
    onMiss(const TlbMiss &miss, PrefetchDecision &decision) override
    {
        if (!_hasPrev) {
            _prevPage = miss.vpn;
            _hasPrev = true;
            return;
        }
        std::int64_t dist = static_cast<std::int64_t>(miss.vpn) -
                            static_cast<std::int64_t>(_prevPage);
        if (_hasPrevDist) {
            Slots &slots =
                _table.findOrInsert(key(_prevDist, _prevPrevDist,
                                        _prevPc));
            slots.setCapacity(_slots);
            slots.addOrPromote(dist);
        }
        if (Slots *slots =
                _table.find(key(dist, _prevDist, miss.pc))) {
            std::size_t n =
                std::min<std::size_t>(slots->size(), _slots);
            for (std::size_t i = 0; i < n; ++i) {
                std::int64_t target =
                    static_cast<std::int64_t>(miss.vpn) + (*slots)[i];
                if (target >= 0)
                    decision.targets.push_back(
                        static_cast<Vpn>(target));
            }
        }
        _prevPrevDist = _prevDist;
        _prevDist = dist;
        _hasPrevDist = true;
        _prevPage = miss.vpn;
        _prevPc = miss.pc;
    }

    void
    reset() override
    {
        _table.reset();
        _hasPrev = false;
        _hasPrevDist = false;
    }

    std::string name() const override { return "DPx"; }

    std::string
    label() const override
    {
        switch (_mode) {
          case IndexMode::Distance:
            return "DP";
          case IndexMode::PcDistance:
            return "DP+PC";
          case IndexMode::TwoDistances:
            return "DP+2dist";
        }
        return "?";
    }

    HardwareProfile
    hardwareProfile() const override
    {
        return HardwareProfile{"r", "variant", "On-Chip", label(), 0,
                               std::to_string(_slots)};
    }

  private:
    using Slots = SlotLru<std::int64_t>;

    std::uint64_t
    key(std::int64_t dist, std::int64_t prev_dist, Addr pc) const
    {
        switch (_mode) {
          case IndexMode::Distance:
            return zigZagEncode(dist);
          case IndexMode::PcDistance:
            return mix64(zigZagEncode(dist) ^ (pc << 20));
          case IndexMode::TwoDistances:
            return mix64(zigZagEncode(dist) ^
                         (zigZagEncode(prev_dist) << 24));
        }
        return 0;
    }

    IndexMode _mode;
    std::uint32_t _slots;
    PredictionTable<Slots> _table;

    Vpn _prevPage = 0;
    Addr _prevPc = 0;
    std::int64_t _prevDist = 0;
    std::int64_t _prevPrevDist = 0;
    bool _hasPrev = false;
    bool _hasPrevDist = false;
};

double
runVariant(const WorkloadSpec &workload, IndexMode mode,
           std::uint64_t refs)
{
    SimConfig config;
    Tlb tlb(config.tlb);
    PrefetchBuffer buffer(config.pbEntries);
    IndexedDistancePrefetcher prefetcher(
        TableConfig{256, TableAssoc::Direct}, 2, mode);

    auto stream = workload.build(refs);
    MemRef ref;
    PrefetchDecision decision;
    std::uint64_t misses = 0;
    std::uint64_t pb_hits = 0;
    while (stream->next(ref)) {
        Vpn vpn = ref.vpn();
        if (tlb.access(vpn))
            continue;
        ++misses;
        Tick ready = 0;
        bool hit = buffer.hitAndPromote(vpn, ready);
        pb_hits += hit;
        std::optional<Vpn> evicted = tlb.insert(vpn);
        decision.clear();
        prefetcher.onMiss(
            TlbMiss{vpn, ref.pc, hit, evicted.value_or(kNoPage)},
            decision);
        for (Vpn target : decision.targets) {
            if (target == vpn || tlb.contains(target) ||
                buffer.contains(target))
                continue;
            buffer.insert(target, 0);
        }
    }
    return misses ? static_cast<double>(pb_hits) /
                        static_cast<double>(misses)
                  : 0.0;
}

} // namespace

int
main(int argc, char **argv)
{
    BenchOptions options = parseBenchOptions(argc, argv);

    std::printf("=== Ablation A2: DP table-indexing variants "
                "(refs/app = %llu) ===\n",
                static_cast<unsigned long long>(options.refs));

    // The experimental prefetcher is not a factory Scheme, so the
    // cells cannot be SweepJobs; fan the workload × mode grid out on
    // the engine's thread pool directly, each cell writing its own
    // slot.  build() throws from the workers; the catch below turns
    // that into the documented clean fatal exit.
    std::vector<WorkloadSpec> workloads =
        selectedWorkloads(options, highMissRateApps());
    requireUnshardedWorkloads(options, workloads, "ablation_indexing");
    const IndexMode modes[] = {IndexMode::Distance,
                               IndexMode::PcDistance,
                               IndexMode::TwoDistances};
    std::vector<double> accuracy(workloads.size() * 3);
    ThreadPool pool(options.threads);
    try {
        pool.parallelFor(accuracy.size(), [&](std::size_t i) {
            accuracy[i] =
                runVariant(workloads[i / 3], modes[i % 3],
                           options.refs);
        });
    } catch (const std::invalid_argument &e) {
        tlbpf_fatal(e.what());
    }

    TableSink out("prediction accuracy per indexing variant (r=256,D)");
    out.header({"workload", "DP", "DP+PC", "DP+2dist"});
    MultiSink records = recordSinks(options);
    if (!records.empty())
        records.header({"workload", "variant", "accuracy"});
    const char *variant_names[] = {"DP", "DP+PC", "DP+2dist"};
    for (std::size_t a = 0; a < workloads.size(); ++a) {
        out.row({workloads[a].label(),
                 TablePrinter::num(accuracy[a * 3 + 0], 3),
                 TablePrinter::num(accuracy[a * 3 + 1], 3),
                 TablePrinter::num(accuracy[a * 3 + 2], 3)});
        if (!records.empty())
            for (std::size_t m = 0; m < 3; ++m)
                records.row({workloads[a].label(), variant_names[m],
                             TablePrinter::num(accuracy[a * 3 + m],
                                               6)});
    }
    out.finish();
    records.finish();
    return 0;
}
