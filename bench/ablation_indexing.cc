/**
 * @file
 * Ablation A2: the DP table-indexing variants the paper flags as
 * future work (Section 2.5): "One could, perhaps, envision indexing
 * this table using the PC value together with the distance, or using a
 * set of consecutive distances."
 *
 * Three predictors are compared:
 *   DP        — index by current distance (the paper's design)
 *   DP+PC     — index by hash(PC, distance)
 *   DP+2dist  — index by hash(previous distance, current distance)
 *
 * The experimental predictor is registered with the open
 * MechanismRegistry at startup as `dpx(rows=...,slots=...,index=
 * dist|pc|2dist)` — through the same public add() any plugin would
 * use, with no edits to the core prefetch tree — so the cells run as
 * ordinary SweepJobs and --mech can mix dpx variants with the stock
 * mechanisms (e.g. --mech 'dpx(index=pc),DP,256,D').
 *
 * Usage: ablation_indexing [--refs N] [--threads N] [--shards N]
 *                          [--csv out.csv] [--json out.json]
 *                          [--workload spec,...] [--mech spec,...]
 *                          [--list-mechanisms]
 */

#include <cstdio>

#include "bench_common.hh"
#include "core/prediction_table.hh"
#include "prefetch/prefetcher.hh"
#include "sim/functional_sim.hh"
#include "util/bits.hh"
#include "util/random.hh"

namespace
{

using namespace tlbpf;
using namespace tlbpf::bench;

/** Indexing variants for the experimental distance predictor. */
enum class IndexMode
{
    Distance,    ///< the paper's DP
    PcDistance,  ///< PC hashed into the index
    TwoDistances ///< pair of consecutive distances
};

/**
 * Experimental distance prefetcher with pluggable index construction,
 * built directly on the core PredictionTable to show how variants can
 * be prototyped against the same simulator.
 */
class IndexedDistancePrefetcher : public Prefetcher
{
  public:
    IndexedDistancePrefetcher(const TableConfig &table,
                              std::uint32_t slots, IndexMode mode)
        : _mode(mode), _slots(slots), _table(table)
    {
    }

    void
    onMiss(const TlbMiss &miss, PrefetchDecision &decision) override
    {
        if (!_hasPrev) {
            _prevPage = miss.vpn;
            _hasPrev = true;
            return;
        }
        std::int64_t dist = static_cast<std::int64_t>(miss.vpn) -
                            static_cast<std::int64_t>(_prevPage);
        if (_hasPrevDist) {
            Slots &slots =
                _table.findOrInsert(key(_prevDist, _prevPrevDist,
                                        _prevPc));
            slots.setCapacity(_slots);
            slots.addOrPromote(dist);
        }
        if (Slots *slots =
                _table.find(key(dist, _prevDist, miss.pc))) {
            std::size_t n =
                std::min<std::size_t>(slots->size(), _slots);
            for (std::size_t i = 0; i < n; ++i) {
                std::int64_t target =
                    static_cast<std::int64_t>(miss.vpn) + (*slots)[i];
                if (target >= 0)
                    decision.targets.push_back(
                        static_cast<Vpn>(target));
            }
        }
        _prevPrevDist = _prevDist;
        _prevDist = dist;
        _hasPrevDist = true;
        _prevPage = miss.vpn;
        _prevPc = miss.pc;
    }

    void
    reset() override
    {
        _table.reset();
        _hasPrev = false;
        _hasPrevDist = false;
    }

    // Checkpoint hooks: dpx is registered through the public registry
    // API only, and these overrides are all it takes for the sweep
    // engine's checkpoint-chained --shards warm-up to cover it too.
    bool checkpointable() const override { return true; }

    void
    snapshotState(SnapshotWriter &out) const override
    {
        _table.snapshotSlotState(out);
        out.u64(_prevPage);
        out.u64(_prevPc);
        out.i64(_prevDist);
        out.i64(_prevPrevDist);
        out.boolean(_hasPrev);
        out.boolean(_hasPrevDist);
    }

    void
    restoreState(SnapshotReader &in) override
    {
        _table.restoreSlotState(in, _slots);
        _prevPage = in.u64();
        _prevPc = in.u64();
        _prevDist = in.i64();
        _prevPrevDist = in.i64();
        _hasPrev = in.boolean();
        _hasPrevDist = in.boolean();
    }

    std::string name() const override { return "DPx"; }

    std::string
    label() const override
    {
        switch (_mode) {
          case IndexMode::Distance:
            return "DP";
          case IndexMode::PcDistance:
            return "DP+PC";
          case IndexMode::TwoDistances:
            return "DP+2dist";
        }
        return "?";
    }

    HardwareProfile
    hardwareProfile() const override
    {
        return HardwareProfile{"r", "variant", "On-Chip", label(), 0,
                               std::to_string(_slots)};
    }

  private:
    using Slots = SlotLru<std::int64_t>;

    std::uint64_t
    key(std::int64_t dist, std::int64_t prev_dist, Addr pc) const
    {
        switch (_mode) {
          case IndexMode::Distance:
            return zigZagEncode(dist);
          case IndexMode::PcDistance:
            return mix64(zigZagEncode(dist) ^ (pc << 20));
          case IndexMode::TwoDistances:
            return mix64(zigZagEncode(dist) ^
                         (zigZagEncode(prev_dist) << 24));
        }
        return 0;
    }

    IndexMode _mode;
    std::uint32_t _slots;
    PredictionTable<Slots> _table;

    Vpn _prevPage = 0;
    Addr _prevPc = 0;
    std::int64_t _prevDist = 0;
    std::int64_t _prevPrevDist = 0;
    bool _hasPrev = false;
    bool _hasPrevDist = false;
};

/**
 * Register dpx with the open registry — the bench-local proof that a
 * mechanism variant needs no edits to the core prefetch tree.
 */
void
registerDpx()
{
    MechanismEntry dpx;
    dpx.name = "dpx";
    dpx.shortName = "DPx";
    dpx.summary = "experimental distance predictor with pluggable "
                  "index construction (dist/pc/2dist)";
    dpx.params = {
        MechParam::makeUInt("rows", "prediction-table rows", 256, 1,
                            1u << 20),
        MechParam::makeUInt("slots", "prediction slots per row", 2, 1,
                            8),
        MechParam::makeChoice(
            "index", "table index: dist (the paper's DP), pc, 2dist",
            {"dist", "pc", "2dist"}, {{"distance", "dist"}}),
    };
    dpx.build = [](const MechanismSpec &spec, PageTable &) {
        const std::string &index = spec.choiceParam("index");
        IndexMode mode = index == "pc" ? IndexMode::PcDistance
                         : index == "2dist" ? IndexMode::TwoDistances
                                            : IndexMode::Distance;
        return std::unique_ptr<Prefetcher>(
            std::make_unique<IndexedDistancePrefetcher>(
                TableConfig{
                    static_cast<std::uint32_t>(spec.uintParam("rows")),
                    TableAssoc::Direct},
                static_cast<std::uint32_t>(spec.uintParam("slots")),
                mode));
    };
    dpx.legend = [](const MechanismSpec &spec) {
        return spec.canonical();
    };
    MechanismRegistry::instance().add(std::move(dpx));
}

} // namespace

int
main(int argc, char **argv)
{
    registerDpx();
    BenchOptions options = parseBenchOptions(argc, argv);

    std::printf("=== Ablation A2: DP table-indexing variants "
                "(refs/app = %llu) ===\n",
                static_cast<unsigned long long>(options.refs));

    // With dpx registered, the variant cells are ordinary SweepJobs:
    // the workload × mechanism grid is one engine batch, --shards and
    // --mech both work.
    std::vector<WorkloadSpec> workloads =
        selectedWorkloads(options, highMissRateApps());
    std::vector<MechanismSpec> mechs = selectedMechanisms(
        options, std::vector<std::string>{"dpx", "dpx(index=pc)",
                                          "dpx(index=2dist)"});
    std::vector<SweepJob> jobs;
    jobs.reserve(workloads.size() * mechs.size());
    for (const WorkloadSpec &workload : workloads)
        for (const MechanismSpec &spec : mechs)
            jobs.push_back(SweepJob::functional(workload, spec,
                                                options.refs));
    std::vector<SweepResult> results = runBatch(options, jobs);

    TableSink out("prediction accuracy per indexing variant (r=256,D)");
    std::vector<std::string> header = {"workload"};
    for (const MechanismSpec &spec : mechs)
        header.push_back(spec.label());
    out.header(header);
    MultiSink records = recordSinks(options);
    if (!records.empty())
        records.header({"workload", "variant", "accuracy"});
    std::size_t cell = 0;
    for (std::size_t a = 0; a < workloads.size(); ++a) {
        std::vector<std::string> row = {workloads[a].label()};
        for (const MechanismSpec &spec : mechs) {
            const SweepResult &r = results[cell++];
            row.push_back(TablePrinter::num(r.accuracy(), 3));
            if (!records.empty())
                records.row({workloads[a].label(), spec.label(),
                             TablePrinter::num(r.accuracy(), 6)});
        }
        out.row(row);
    }
    out.finish();
    records.finish();
    return 0;
}
