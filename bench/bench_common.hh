/**
 * @file
 * Shared helpers for the bench binaries that regenerate the paper's
 * tables and figures: standard option parsing (reference budget, app
 * subset, thread count, CSV/JSON output paths), result-sink plumbing,
 * and the figure-style accuracy sweep driver.
 *
 * All sweeps execute on the SweepEngine: a bench builds its full
 * (app × mechanism × geometry) job list up front, runs it across
 * --threads workers, and renders the ordered results — so output is
 * bit-identical for any thread count.
 */

#ifndef TLBPF_BENCH_BENCH_COMMON_HH
#define TLBPF_BENCH_BENCH_COMMON_HH

#include <algorithm>
#include <cstdio>
#include <stdexcept>
#include <string>
#include <vector>

#include "run/result_sink.hh"
#include "run/sweep_engine.hh"
#include "sim/experiment.hh"
#include "util/cli.hh"
#include "util/logging.hh"
#include "util/table_printer.hh"

namespace tlbpf::bench
{

/** Standard options shared by the figure/table binaries. */
struct BenchOptions
{
    std::uint64_t refs = kDefaultBenchRefs;
    std::string csvPath;           ///< optional machine-readable dump
    std::string jsonPath;          ///< optional JSON dump
    std::vector<std::string> apps; ///< restrict to a subset
    unsigned threads = 1;          ///< sweep-engine worker count
};

inline BenchOptions
parseBenchOptions(int argc, const char *const *argv,
                  std::vector<std::string> extra_known = {})
{
    std::vector<std::string> known = {"refs", "csv", "json", "apps",
                                      "threads"};
    for (auto &k : extra_known)
        known.push_back(k);
    CliArgs args(argc, argv, known);
    BenchOptions options;
    options.refs = static_cast<std::uint64_t>(
        args.getInt("refs", static_cast<std::int64_t>(
                                kDefaultBenchRefs)));
    options.csvPath = args.get("csv");
    options.jsonPath = args.get("json");
    if (args.has("apps"))
        options.apps = parseStringList(args.get("apps"));
    std::int64_t threads = args.getInt(
        "threads",
        static_cast<std::int64_t>(ThreadPool::defaultThreadCount()));
    if (threads < 0 || threads > 4096)
        tlbpf_fatal("--threads must be in [0, 4096], got ", threads);
    options.threads = threads ? static_cast<unsigned>(threads)
                              : ThreadPool::defaultThreadCount();
    return options;
}

/** True if @p name passes the --apps filter. */
inline bool
appSelected(const BenchOptions &options, const std::string &name)
{
    return options.apps.empty() ||
           std::find(options.apps.begin(), options.apps.end(), name) !=
               options.apps.end();
}

/**
 * The machine-readable sinks requested on the command line (--csv,
 * --json), with no header set yet; empty() if neither was given.
 */
inline MultiSink
recordSinks(const BenchOptions &options)
{
    MultiSink sinks;
    if (!options.csvPath.empty())
        sinks.add(std::make_unique<CsvSink>(options.csvPath));
    if (!options.jsonPath.empty())
        sinks.add(std::make_unique<JsonSink>(options.jsonPath));
    return sinks;
}

/**
 * Run @p jobs on an engine with options.threads workers, converting a
 * malformed-job exception into the clean fatal exit the bench
 * binaries document (reachable via --refs 0).
 */
inline std::vector<SweepResult>
runBatch(const BenchOptions &options, const std::vector<SweepJob> &jobs)
{
    try {
        // No point spinning up more workers than there are cells.
        unsigned threads = static_cast<unsigned>(
            std::min<std::size_t>(options.threads,
                                  std::max<std::size_t>(jobs.size(),
                                                        1)));
        SweepEngine engine(threads);
        return engine.run(jobs);
    } catch (const std::invalid_argument &e) {
        tlbpf_fatal(e.what());
    }
}

/**
 * Print one figure-style "bar group" row per application: the full
 * app × spec grid runs as one engine batch, the table shows accuracy
 * per (app, spec) cell, and --csv/--json receive long-format
 * (app, mechanism, accuracy, miss_rate) records.
 */
inline void
printAccuracyFigure(const std::string &caption,
                    const std::vector<const AppModel *> &apps,
                    const std::vector<PrefetcherSpec> &specs,
                    const BenchOptions &options)
{
    std::vector<const AppModel *> selected;
    for (const AppModel *app : apps)
        if (appSelected(options, app->name))
            selected.push_back(app);

    std::vector<SweepJob> jobs;
    jobs.reserve(selected.size() * specs.size());
    for (const AppModel *app : selected)
        for (const PrefetcherSpec &spec : specs)
            jobs.push_back(SweepJob::functional(app->name, spec,
                                                options.refs));
    std::vector<SweepResult> results = runBatch(options, jobs);

    std::vector<std::string> header = {"app"};
    for (const PrefetcherSpec &spec : specs)
        header.push_back(spec.label());
    TableSink table(caption);
    table.header(header);

    MultiSink records = recordSinks(options);
    if (!records.empty())
        records.header({"app", "mechanism", "accuracy", "miss_rate"});

    std::size_t cell = 0;
    for (const AppModel *app : selected) {
        std::vector<std::string> row = {app->name};
        for (const PrefetcherSpec &spec : specs) {
            const SweepResult &r = results[cell++];
            row.push_back(TablePrinter::num(r.accuracy(), 3));
            if (!records.empty())
                records.row({app->name, spec.label(),
                             TablePrinter::num(r.accuracy(), 6),
                             TablePrinter::num(r.missRate(), 6)});
        }
        table.row(row);
    }
    table.finish();
    records.finish();
}

} // namespace tlbpf::bench

#endif // TLBPF_BENCH_BENCH_COMMON_HH
