/**
 * @file
 * Shared helpers for the bench binaries that regenerate the paper's
 * tables and figures: standard option parsing (reference budget,
 * workload selection, thread/shard counts, CSV/JSON output paths),
 * result-sink plumbing, and the figure-style accuracy sweep driver.
 *
 * All sweeps execute on the SweepEngine: a bench builds its full
 * (workload × mechanism × geometry) job list up front, runs it across
 * --threads workers, and renders the ordered results — so output is
 * bit-identical for any thread count.
 *
 * Workload addressing: every binary accepts
 *   --workload <spec>[,<spec>...]  explicit WorkloadSpec list
 *                                  (app names, trace:file.tpf,
 *                                  mix:a+b@100k, spec#k/N)
 *   --app <name>[,...]             sugar for --workload app:<name>
 *   --apps a,b,c                   restrict the bench's default app
 *                                  set (legacy filter)
 *   --shards N                     split each functional cell into N
 *                                  merged shard jobs
 *
 * Mechanism addressing: every binary accepts
 *   --mech <spec>[,<spec>...]      explicit MechanismSpec list in
 *                                  either grammar: dp(rows=512,assoc=4w),
 *                                  sp(degree=2), hybrid(dp+sp), or the
 *                                  figure-legend forms DP,256,D / RP /
 *                                  ASQ (parenthesised specs nest, so
 *                                  "hybrid(dp+sp),rp" is two specs)
 *   --list-mechanisms              print the registry (names, aliases,
 *                                  typed parameters) and exit
 *   --shard-warmup replay|checkpoint
 *                                  how shards reconstruct their warm
 *                                  state: independent prefix replay
 *                                  (~(N+1)/2x total CPU, best latency
 *                                  on many cores) or the default
 *                                  checkpoint chain (~1x total CPU)
 *   --single-pass on|off           batch consecutive same-stream
 *                                  functional cells into one stream
 *                                  pass over N simulators (default
 *                                  on; bit-identical results either
 *                                  way; ignored when --shards > 1)
 *
 * The pre-registry per-scheme flags (--scheme/--rows/--assoc/--slots/
 * --degree/--adaptive/--reach) were deprecated in the release that
 * introduced --mech and have now been removed; passing one fails with
 * an error naming the equivalent --mech spec string.
 */

#ifndef TLBPF_BENCH_BENCH_COMMON_HH
#define TLBPF_BENCH_BENCH_COMMON_HH

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

#include "run/result_sink.hh"
#include "run/sweep_engine.hh"
#include "sim/experiment.hh"
#include "util/cli.hh"
#include "util/logging.hh"
#include "util/table_printer.hh"
#include "workload/workload_spec.hh"

namespace tlbpf::bench
{

/** Standard options shared by the figure/table binaries. */
struct BenchOptions
{
    std::uint64_t refs = kDefaultBenchRefs;
    std::string csvPath;           ///< optional machine-readable dump
    std::string jsonPath;          ///< optional JSON dump
    std::vector<std::string> apps; ///< restrict the default set
    std::vector<WorkloadSpec> workloads; ///< explicit --workload/--app
    std::vector<MechanismSpec> mechs;    ///< explicit --mech list
    unsigned threads = 1;          ///< sweep-engine worker count
    std::uint32_t shards = 1;      ///< shard fan-out per functional cell
    /** How sharded cells warm up (--shard-warmup). */
    ShardWarmup shardWarmup = ShardWarmup::Checkpoint;
    /**
     * Drain each distinct stream once for all of its mechanisms
     * (--single-pass, default on).  Only applies to unsharded runs;
     * results are bit-identical in both settings.
     */
    bool singlePass = true;
};

/** The option names every bench accepts (one source of truth). */
inline std::vector<std::string>
standardBenchFlags()
{
    return {"refs",     "csv",    "json",     "apps",
            "threads",  "workload", "app",    "shards",
            "shard-warmup", "mech", "list-mechanisms",
            "single-pass"};
}

/**
 * The pre-registry per-scheme flags, removed after their one-release
 * deprecation window.  They are still *recognised* (so option parsing
 * can collect their values) but rejected with an error that names the
 * equivalent --mech spec string, instead of a bare "unknown option".
 */
inline std::vector<std::string>
removedSchemeFlags()
{
    return {"scheme", "rows",     "assoc", "slots",
            "degree", "adaptive", "reach"};
}

/** Print the mechanism registry (for --list-mechanisms) and exit 0. */
[[noreturn]] inline void
listMechanismsAndExit()
{
    std::printf("mechanism registry (use with --mech "
                "'name(key=value,...)' or a figure-legend form):\n");
    for (const MechanismEntry *entry :
         MechanismRegistry::instance().entries()) {
        std::printf("  %-8s %s\n", entry->name.c_str(),
                    entry->summary.c_str());
        if (entry->composite) {
            std::printf("           children: %zu..%zu '+'-separated "
                        "specs, e.g. %s(dp+sp)\n",
                        entry->minChildren, entry->maxChildren,
                        entry->name.c_str());
        }
        for (const MechParam &param : entry->params) {
            std::string domain;
            switch (param.kind) {
              case MechParam::Kind::UInt:
                // Appends, not one +-chain: the chained form trips a
                // GCC 12 -Wrestrict false positive when inlined.
                domain += "[";
                domain += std::to_string(param.min);
                domain += "..";
                domain += std::to_string(param.max);
                domain += "], default ";
                domain += std::to_string(param.dflt);
                break;
              case MechParam::Kind::Flag:
                domain = std::string("flag, default ") +
                         (param.dflt ? "on" : "off");
                break;
              case MechParam::Kind::Choice:
                for (const std::string &choice : param.choices)
                    domain += (domain.empty() ? "" : "|") + choice;
                domain += ", default " + param.choices.front();
                break;
            }
            std::printf("           %s=%s — %s\n", param.key.c_str(),
                        domain.c_str(), param.help.c_str());
        }
        for (const auto &[alias, target] : entry->aliases)
            std::printf("           alias %s -> %s\n", alias.c_str(),
                        target.c_str());
    }
    std::exit(0);
}

/**
 * The --mech spec string equivalent to a removed per-scheme flag
 * combination, used to make the rejection error actionable.  Without
 * --scheme the mechanism name is unknown; "<mechanism>" stands in.
 */
inline std::string
removedSchemeSpecString(const CliArgs &args)
{
    std::string spec =
        args.has("scheme") ? args.get("scheme") : "<mechanism>";
    std::string params;
    auto append = [&params](const std::string &kv) {
        params += (params.empty() ? "" : ",") + kv;
    };
    if (args.has("rows"))
        append("rows=" + args.get("rows"));
    if (args.has("assoc"))
        append("assoc=" + args.get("assoc"));
    if (args.has("slots"))
        append("slots=" + args.get("slots"));
    if (args.has("degree"))
        append("degree=" + args.get("degree"));
    if (args.has("adaptive")) {
        std::string value = args.get("adaptive");
        append(value.empty() ? "adaptive" : "adaptive=" + value);
    }
    if (args.has("reach"))
        append("reach=" + args.get("reach"));
    if (!params.empty())
        spec += "(" + params + ")";
    return spec;
}

/**
 * Fatal if any removed per-scheme flag is present, naming the --mech
 * spec string that replaces the given combination.
 */
inline void
rejectRemovedSchemeFlags(const CliArgs &args)
{
    std::string seen;
    for (const std::string &flag : removedSchemeFlags())
        if (args.has(flag))
            seen += (seen.empty() ? "--" : ", --") + flag;
    if (seen.empty())
        return;
    tlbpf_fatal(seen, ": the per-scheme flags were removed after "
                      "their deprecation window; use --mech '",
                removedSchemeSpecString(args), "'");
}

/**
 * Parse a count-valued flag with a hard range, shared by every bench
 * so the error always names the flag.  This is the one gate between
 * the int64 the CLI parses and the unsigned the options struct
 * carries: without it, garbage like `--refs -5` or `--threads -3`
 * would wrap through the unsigned cast into a huge positive count.
 */
inline std::int64_t
boundedCountFlag(const CliArgs &args, const char *flag,
                 std::int64_t min, std::int64_t max, std::int64_t dflt)
{
    std::int64_t value = args.getInt(flag, dflt);
    if (value < min || value > max)
        tlbpf_fatal("--", flag, " must be an integer in [", min, ", ",
                    max, "], got ", value);
    return value;
}

inline BenchOptions
parseBenchOptions(int argc, const char *const *argv,
                  std::vector<std::string> extra_known = {})
{
    std::vector<std::string> known = standardBenchFlags();
    for (const std::string &k : removedSchemeFlags())
        known.push_back(k);
    for (auto &k : extra_known)
        known.push_back(k);
    CliArgs args(argc, argv, known);
    rejectRemovedSchemeFlags(args);
    if (args.has("list-mechanisms"))
        listMechanismsAndExit();
    BenchOptions options;
    options.refs = static_cast<std::uint64_t>(boundedCountFlag(
        args, "refs", 1, std::numeric_limits<std::int64_t>::max(),
        static_cast<std::int64_t>(kDefaultBenchRefs)));
    options.csvPath = args.get("csv");
    options.jsonPath = args.get("json");
    if (args.has("apps"))
        options.apps = parseStringList(args.get("apps"));
    for (const std::string &spec : parseStringList(args.get("workload")))
        options.workloads.push_back(parseWorkloadOrDie(spec));
    for (const std::string &name : parseStringList(args.get("app")))
        options.workloads.push_back(parseWorkloadOrDie("app:" + name));
    if (args.has("mech"))
        options.mechs = parseMechanismListOrDie(args.get("mech"));
    // --threads 0 is the documented "use hardware concurrency"
    // spelling; anything below that is rejected, not wrapped.
    std::int64_t threads = boundedCountFlag(
        args, "threads", 0, 4096,
        static_cast<std::int64_t>(ThreadPool::defaultThreadCount()));
    options.threads = threads ? static_cast<unsigned>(threads)
                              : ThreadPool::defaultThreadCount();
    options.shards = static_cast<std::uint32_t>(
        boundedCountFlag(args, "shards", 1, 4096, 1));
    if (args.has("shard-warmup")) {
        try {
            options.shardWarmup =
                parseShardWarmup(args.get("shard-warmup"));
        } catch (const std::invalid_argument &e) {
            tlbpf_fatal(e.what());
        }
    }
    if (args.has("single-pass")) {
        std::string value = args.get("single-pass");
        if (value == "on")
            options.singlePass = true;
        else if (value == "off")
            options.singlePass = false;
        else
            tlbpf_fatal("--single-pass must be on or off, got '",
                        value, "'");
    }
    return options;
}

/** True if @p name passes the --apps filter. */
inline bool
appSelected(const BenchOptions &options, const std::string &name)
{
    return options.apps.empty() ||
           std::find(options.apps.begin(), options.apps.end(), name) !=
               options.apps.end();
}

/**
 * The workload list a bench should sweep: the explicit --workload /
 * --app list when one was given, otherwise the bench's default app
 * names (filtered by --apps) as registry-app specs.
 */
inline std::vector<WorkloadSpec>
selectedWorkloads(const BenchOptions &options,
                  const std::vector<std::string> &default_apps)
{
    if (!options.workloads.empty())
        return options.workloads;
    std::vector<WorkloadSpec> workloads;
    workloads.reserve(default_apps.size());
    for (const std::string &name : default_apps)
        if (appSelected(options, name))
            workloads.push_back(WorkloadSpec::app(name));
    return workloads;
}

/**
 * The mechanism list a bench should sweep: the explicit --mech list
 * when one was given, otherwise the bench's default specs.
 */
inline std::vector<MechanismSpec>
selectedMechanisms(const BenchOptions &options,
                   std::vector<MechanismSpec> default_specs)
{
    return options.mechs.empty() ? std::move(default_specs)
                                 : options.mechs;
}

/** selectedMechanisms() over a table of default spec strings. */
inline std::vector<MechanismSpec>
selectedMechanisms(const BenchOptions &options,
                   const std::vector<std::string> &default_specs)
{
    if (!options.mechs.empty())
        return options.mechs;
    std::vector<MechanismSpec> specs;
    specs.reserve(default_specs.size());
    for (const std::string &text : default_specs)
        specs.push_back(parseMechanismOrDie(text));
    return specs;
}

/**
 * Display names for a mechanism list: the compact shortName() (the
 * paper's column headers) while unambiguous, the full figure-legend
 * label() as soon as two specs share a shortName — so
 * `--mech 'DP,256,D,DP,512,D'` yields distinguishable columns.
 */
inline std::vector<std::string>
mechanismColumnLabels(const std::vector<MechanismSpec> &specs)
{
    std::vector<std::string> names;
    names.reserve(specs.size());
    for (const MechanismSpec &spec : specs)
        names.push_back(spec.shortName());
    for (std::size_t i = 0; i < names.size(); ++i)
        for (std::size_t j = i + 1; j < names.size(); ++j)
            if (names[i] == names[j]) {
                names.clear();
                for (const MechanismSpec &spec : specs)
                    names.push_back(spec.label());
                return names;
            }
    return names;
}

/** Registry-model overload of selectedWorkloads(). */
inline std::vector<WorkloadSpec>
selectedWorkloads(const BenchOptions &options,
                  const std::vector<const AppModel *> &default_apps)
{
    std::vector<std::string> names;
    names.reserve(default_apps.size());
    for (const AppModel *app : default_apps)
        names.push_back(app->name);
    return selectedWorkloads(options, names);
}

/**
 * The machine-readable sinks requested on the command line (--csv,
 * --json), with no header set yet; empty() if neither was given.
 */
inline MultiSink
recordSinks(const BenchOptions &options)
{
    MultiSink sinks;
    if (!options.csvPath.empty())
        sinks.add(std::make_unique<CsvSink>(options.csvPath));
    if (!options.jsonPath.empty())
        sinks.add(std::make_unique<JsonSink>(options.jsonPath));
    return sinks;
}

/**
 * Run @p jobs on an engine with options.threads workers, applying the
 * --shards map/reduce (each functional cell fans out into
 * options.shards merged shard jobs, warmed per --shard-warmup), and
 * converting a malformed-job exception into the clean fatal exit the
 * bench binaries document (reachable via an unknown app or a bad
 * trace path; --refs 0 is already rejected at the flag).  Returns
 * one result per entry of @p jobs.
 */
inline std::vector<SweepResult>
runBatch(const BenchOptions &options, const std::vector<SweepJob> &jobs)
{
    try {
        if (options.shards <= 1 && options.singlePass) {
            SweepEngine engine(options.threads);
            return engine.run(jobs, PassMode::SinglePass);
        }
        // No point spinning up more workers than the schedule has
        // independent tasks (checkpoint chains serialise a cell's
        // shards into one task).
        ShardPlan plan = expandShards(jobs, options.shards);
        std::size_t tasks = std::max<std::size_t>(
            shardTaskCount(plan, options.shardWarmup), 1);
        if (options.shardWarmup == ShardWarmup::Checkpoint &&
            options.shards > 1 && tasks < options.threads) {
            // Chaining trades replay's wall-clock fan-out for ~1x
            // total CPU; with fewer cells than workers that trade is
            // worth flagging so nobody waits on a silently-serial
            // giant cell.
            std::fprintf(stderr,
                         "note: checkpoint warm-up chains each "
                         "cell's shards into one task (%zu task%s "
                         "for --threads %u); use --shard-warmup "
                         "replay to trade ~(N+1)/2x total CPU for "
                         "wall-clock fan-out of few large cells\n",
                         tasks, tasks == 1 ? "" : "s",
                         options.threads);
        }
        unsigned threads = static_cast<unsigned>(
            std::min<std::size_t>(options.threads, tasks));
        SweepEngine engine(threads);
        return engine.runSharded(plan, options.shardWarmup);
    } catch (const std::invalid_argument &e) {
        tlbpf_fatal(e.what());
    }
}

/**
 * Guard for the benches whose cells run whole streams outside the
 * SweepJob machinery (distance_stats, ablation_indexing,
 * ablation_two_level): they cannot window counters, so a shard
 * suffix or --shards would be silently ignored while still labelling
 * the output — fatal instead.
 */
inline void
requireUnshardedWorkloads(const BenchOptions &options,
                          const std::vector<WorkloadSpec> &workloads,
                          const char *bench)
{
    if (options.shards > 1)
        tlbpf_fatal(bench, " runs whole streams and does not support "
                           "--shards");
    for (const WorkloadSpec &workload : workloads)
        if (workload.sharded())
            tlbpf_fatal(bench, " runs whole streams and does not "
                               "support sharded workload '",
                        workload.label(), "'");
}

/**
 * Render a completed workload × spec accuracy grid: the table shows
 * accuracy per (workload, spec) cell, and @p records (if non-empty)
 * receives long-format (workload, mechanism, accuracy, miss_rate)
 * rows.  @p results is workload-major (the submission order every
 * grid batch uses).  Shared by the figure benches and tlbpf-client,
 * which is what makes the client's --csv/--json output byte-identical
 * to the direct CLI path.
 */
inline void
renderAccuracyGrid(const std::string &caption,
                   const std::vector<WorkloadSpec> &workloads,
                   const std::vector<MechanismSpec> &specs,
                   const std::vector<SweepResult> &results,
                   MultiSink &records)
{
    std::vector<std::string> header = {"workload"};
    for (const MechanismSpec &spec : specs)
        header.push_back(spec.label());
    TableSink table(caption);
    table.header(header);

    if (!records.empty())
        records.header({"workload", "mechanism", "accuracy",
                        "miss_rate"});

    std::size_t cell = 0;
    for (const WorkloadSpec &workload : workloads) {
        std::vector<std::string> row = {workload.label()};
        for (const MechanismSpec &spec : specs) {
            const SweepResult &r = results[cell++];
            row.push_back(TablePrinter::num(r.accuracy(), 3));
            if (!records.empty())
                records.row({r.workload, spec.label(),
                             TablePrinter::num(r.accuracy(), 6),
                             TablePrinter::num(r.missRate(), 6)});
        }
        table.row(row);
    }
    table.finish();
    records.finish();
}

/**
 * Print one figure-style "bar group" row per workload: the full
 * workload × spec grid runs as one engine batch, the table shows
 * accuracy per (workload, spec) cell, and --csv/--json receive
 * long-format (workload, mechanism, accuracy, miss_rate) records.
 */
inline void
printAccuracyFigure(const std::string &caption,
                    const std::vector<WorkloadSpec> &workloads,
                    const std::vector<MechanismSpec> &specs,
                    const BenchOptions &options)
{
    std::vector<SweepJob> jobs;
    jobs.reserve(workloads.size() * specs.size());
    for (const WorkloadSpec &workload : workloads)
        for (const MechanismSpec &spec : specs)
            jobs.push_back(SweepJob::functional(workload, spec,
                                                options.refs));
    std::vector<SweepResult> results = runBatch(options, jobs);

    MultiSink records = recordSinks(options);
    renderAccuracyGrid(caption, workloads, specs, results, records);
}

} // namespace tlbpf::bench

#endif // TLBPF_BENCH_BENCH_COMMON_HH
