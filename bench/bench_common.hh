/**
 * @file
 * Shared helpers for the bench binaries that regenerate the paper's
 * tables and figures: standard option parsing (reference budget,
 * workload selection, thread/shard counts, CSV/JSON output paths),
 * result-sink plumbing, and the figure-style accuracy sweep driver.
 *
 * All sweeps execute on the SweepEngine: a bench builds its full
 * (workload × mechanism × geometry) job list up front, runs it across
 * --threads workers, and renders the ordered results — so output is
 * bit-identical for any thread count.
 *
 * Workload addressing: every binary accepts
 *   --workload <spec>[,<spec>...]  explicit WorkloadSpec list
 *                                  (app names, trace:file.tpf,
 *                                  mix:a+b@100k, spec#k/N)
 *   --app <name>[,...]             sugar for --workload app:<name>
 *   --apps a,b,c                   restrict the bench's default app
 *                                  set (legacy filter)
 *   --shards N                     split each functional cell into N
 *                                  merged shard jobs
 *
 * Mechanism addressing: every binary accepts
 *   --mech <spec>[,<spec>...]      explicit MechanismSpec list in
 *                                  either grammar: dp(rows=512,assoc=4w),
 *                                  sp(degree=2), hybrid(dp+sp), or the
 *                                  figure-legend forms DP,256,D / RP /
 *                                  ASQ (parenthesised specs nest, so
 *                                  "hybrid(dp+sp),rp" is two specs)
 *   --list-mechanisms              print the registry (names, aliases,
 *                                  typed parameters) and exit
 *   --scheme NAME [--rows R] [--assoc A] [--slots S] [--degree D]
 *   [--adaptive] [--reach N]       deprecated per-scheme flags, kept
 *                                  for one release; translated to the
 *                                  equivalent --mech spec string
 */

#ifndef TLBPF_BENCH_BENCH_COMMON_HH
#define TLBPF_BENCH_BENCH_COMMON_HH

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <vector>

#include "run/result_sink.hh"
#include "run/sweep_engine.hh"
#include "sim/experiment.hh"
#include "util/cli.hh"
#include "util/logging.hh"
#include "util/table_printer.hh"
#include "workload/workload_spec.hh"

namespace tlbpf::bench
{

/** Standard options shared by the figure/table binaries. */
struct BenchOptions
{
    std::uint64_t refs = kDefaultBenchRefs;
    std::string csvPath;           ///< optional machine-readable dump
    std::string jsonPath;          ///< optional JSON dump
    std::vector<std::string> apps; ///< restrict the default set
    std::vector<WorkloadSpec> workloads; ///< explicit --workload/--app
    std::vector<MechanismSpec> mechs;    ///< explicit --mech list
    unsigned threads = 1;          ///< sweep-engine worker count
    std::uint32_t shards = 1;      ///< shard fan-out per functional cell
};

/** The option names every bench accepts (one source of truth). */
inline std::vector<std::string>
standardBenchFlags()
{
    return {"refs",     "csv",    "json",     "apps",
            "threads",  "workload", "app",    "shards",
            "mech",     "list-mechanisms",
            // Deprecated per-scheme flags (one release, translated to
            // a --mech spec string).
            "scheme",   "rows",   "assoc",    "slots",
            "degree",   "adaptive", "reach"};
}

/** Print the mechanism registry (for --list-mechanisms) and exit 0. */
[[noreturn]] inline void
listMechanismsAndExit()
{
    std::printf("mechanism registry (use with --mech "
                "'name(key=value,...)' or a figure-legend form):\n");
    for (const MechanismEntry *entry :
         MechanismRegistry::instance().entries()) {
        std::printf("  %-8s %s\n", entry->name.c_str(),
                    entry->summary.c_str());
        if (entry->composite) {
            std::printf("           children: %zu..%zu '+'-separated "
                        "specs, e.g. %s(dp+sp)\n",
                        entry->minChildren, entry->maxChildren,
                        entry->name.c_str());
        }
        for (const MechParam &param : entry->params) {
            std::string domain;
            switch (param.kind) {
              case MechParam::Kind::UInt:
                // Appends, not one +-chain: the chained form trips a
                // GCC 12 -Wrestrict false positive when inlined.
                domain += "[";
                domain += std::to_string(param.min);
                domain += "..";
                domain += std::to_string(param.max);
                domain += "], default ";
                domain += std::to_string(param.dflt);
                break;
              case MechParam::Kind::Flag:
                domain = std::string("flag, default ") +
                         (param.dflt ? "on" : "off");
                break;
              case MechParam::Kind::Choice:
                for (const std::string &choice : param.choices)
                    domain += (domain.empty() ? "" : "|") + choice;
                domain += ", default " + param.choices.front();
                break;
            }
            std::printf("           %s=%s — %s\n", param.key.c_str(),
                        domain.c_str(), param.help.c_str());
        }
        for (const auto &[alias, target] : entry->aliases)
            std::printf("           alias %s -> %s\n", alias.c_str(),
                        target.c_str());
    }
    std::exit(0);
}

/**
 * Translate the deprecated per-scheme flags (--scheme/--rows/--assoc/
 * --slots/--degree/--adaptive/--reach) into the equivalent spec
 * string, so pre-registry sweep scripts keep working for one release.
 * Unknown keys for the named mechanism are rejected by the registry
 * with the usual actionable message.
 */
inline std::string
legacySchemeSpecString(const CliArgs &args)
{
    std::string spec = args.get("scheme");
    std::string params;
    auto append = [&params](const std::string &kv) {
        params += (params.empty() ? "" : ",") + kv;
    };
    if (args.has("rows"))
        append("rows=" + args.get("rows"));
    if (args.has("assoc"))
        append("assoc=" + args.get("assoc"));
    if (args.has("slots"))
        append("slots=" + args.get("slots"));
    if (args.has("degree"))
        append("degree=" + args.get("degree"));
    if (args.has("adaptive")) {
        // Preserve an explicit value (--adaptive=false must disable);
        // a bare --adaptive stays the bare flag form.
        std::string value = args.get("adaptive");
        append(value.empty() ? "adaptive" : "adaptive=" + value);
    }
    if (args.has("reach"))
        append("reach=" + args.get("reach"));
    if (!params.empty())
        spec += "(" + params + ")";
    std::fprintf(stderr,
                 "warning: --scheme and the per-scheme flags are "
                 "deprecated; use --mech '%s'\n",
                 spec.c_str());
    return spec;
}

inline BenchOptions
parseBenchOptions(int argc, const char *const *argv,
                  std::vector<std::string> extra_known = {})
{
    std::vector<std::string> known = standardBenchFlags();
    for (auto &k : extra_known)
        known.push_back(k);
    CliArgs args(argc, argv, known);
    if (args.has("list-mechanisms"))
        listMechanismsAndExit();
    BenchOptions options;
    options.refs = static_cast<std::uint64_t>(
        args.getInt("refs", static_cast<std::int64_t>(
                                kDefaultBenchRefs)));
    options.csvPath = args.get("csv");
    options.jsonPath = args.get("json");
    if (args.has("apps"))
        options.apps = parseStringList(args.get("apps"));
    for (const std::string &spec : parseStringList(args.get("workload")))
        options.workloads.push_back(parseWorkloadOrDie(spec));
    for (const std::string &name : parseStringList(args.get("app")))
        options.workloads.push_back(parseWorkloadOrDie("app:" + name));
    if (args.has("mech"))
        options.mechs = parseMechanismListOrDie(args.get("mech"));
    if (args.has("scheme")) {
        if (args.has("mech"))
            tlbpf_fatal("--scheme (deprecated) and --mech are "
                        "mutually exclusive; use --mech");
        options.mechs.push_back(
            parseMechanismOrDie(legacySchemeSpecString(args)));
    }
    std::int64_t threads = args.getInt(
        "threads",
        static_cast<std::int64_t>(ThreadPool::defaultThreadCount()));
    if (threads < 0 || threads > 4096)
        tlbpf_fatal("--threads must be in [0, 4096], got ", threads);
    options.threads = threads ? static_cast<unsigned>(threads)
                              : ThreadPool::defaultThreadCount();
    std::int64_t shards = args.getInt("shards", 1);
    if (shards < 1 || shards > 4096)
        tlbpf_fatal("--shards must be in [1, 4096], got ", shards);
    options.shards = static_cast<std::uint32_t>(shards);
    return options;
}

/** True if @p name passes the --apps filter. */
inline bool
appSelected(const BenchOptions &options, const std::string &name)
{
    return options.apps.empty() ||
           std::find(options.apps.begin(), options.apps.end(), name) !=
               options.apps.end();
}

/**
 * The workload list a bench should sweep: the explicit --workload /
 * --app list when one was given, otherwise the bench's default app
 * names (filtered by --apps) as registry-app specs.
 */
inline std::vector<WorkloadSpec>
selectedWorkloads(const BenchOptions &options,
                  const std::vector<std::string> &default_apps)
{
    if (!options.workloads.empty())
        return options.workloads;
    std::vector<WorkloadSpec> workloads;
    workloads.reserve(default_apps.size());
    for (const std::string &name : default_apps)
        if (appSelected(options, name))
            workloads.push_back(WorkloadSpec::app(name));
    return workloads;
}

/**
 * The mechanism list a bench should sweep: the explicit --mech list
 * when one was given, otherwise the bench's default specs.
 */
inline std::vector<MechanismSpec>
selectedMechanisms(const BenchOptions &options,
                   std::vector<MechanismSpec> default_specs)
{
    return options.mechs.empty() ? std::move(default_specs)
                                 : options.mechs;
}

/** selectedMechanisms() over a table of default spec strings. */
inline std::vector<MechanismSpec>
selectedMechanisms(const BenchOptions &options,
                   const std::vector<std::string> &default_specs)
{
    if (!options.mechs.empty())
        return options.mechs;
    std::vector<MechanismSpec> specs;
    specs.reserve(default_specs.size());
    for (const std::string &text : default_specs)
        specs.push_back(parseMechanismOrDie(text));
    return specs;
}

/**
 * Display names for a mechanism list: the compact shortName() (the
 * paper's column headers) while unambiguous, the full figure-legend
 * label() as soon as two specs share a shortName — so
 * `--mech 'DP,256,D,DP,512,D'` yields distinguishable columns.
 */
inline std::vector<std::string>
mechanismColumnLabels(const std::vector<MechanismSpec> &specs)
{
    std::vector<std::string> names;
    names.reserve(specs.size());
    for (const MechanismSpec &spec : specs)
        names.push_back(spec.shortName());
    for (std::size_t i = 0; i < names.size(); ++i)
        for (std::size_t j = i + 1; j < names.size(); ++j)
            if (names[i] == names[j]) {
                names.clear();
                for (const MechanismSpec &spec : specs)
                    names.push_back(spec.label());
                return names;
            }
    return names;
}

/** Registry-model overload of selectedWorkloads(). */
inline std::vector<WorkloadSpec>
selectedWorkloads(const BenchOptions &options,
                  const std::vector<const AppModel *> &default_apps)
{
    std::vector<std::string> names;
    names.reserve(default_apps.size());
    for (const AppModel *app : default_apps)
        names.push_back(app->name);
    return selectedWorkloads(options, names);
}

/**
 * The machine-readable sinks requested on the command line (--csv,
 * --json), with no header set yet; empty() if neither was given.
 */
inline MultiSink
recordSinks(const BenchOptions &options)
{
    MultiSink sinks;
    if (!options.csvPath.empty())
        sinks.add(std::make_unique<CsvSink>(options.csvPath));
    if (!options.jsonPath.empty())
        sinks.add(std::make_unique<JsonSink>(options.jsonPath));
    return sinks;
}

/**
 * Run @p jobs on an engine with options.threads workers, applying the
 * --shards map/reduce (each functional cell fans out into
 * options.shards merged shard jobs), and converting a malformed-job
 * exception into the clean fatal exit the bench binaries document
 * (reachable via --refs 0, an unknown app, or a bad trace path).
 * Returns one result per entry of @p jobs.
 */
inline std::vector<SweepResult>
runBatch(const BenchOptions &options, const std::vector<SweepJob> &jobs)
{
    try {
        ShardPlan plan = expandShards(jobs, options.shards);
        // No point spinning up more workers than there are cells.
        unsigned threads = static_cast<unsigned>(
            std::min<std::size_t>(options.threads,
                                  std::max<std::size_t>(
                                      plan.jobs.size(), 1)));
        SweepEngine engine(threads);
        return mergeShardResults(plan, engine.run(plan.jobs));
    } catch (const std::invalid_argument &e) {
        tlbpf_fatal(e.what());
    }
}

/**
 * Guard for the benches whose cells run whole streams outside the
 * SweepJob machinery (distance_stats, ablation_indexing,
 * ablation_two_level): they cannot window counters, so a shard
 * suffix or --shards would be silently ignored while still labelling
 * the output — fatal instead.
 */
inline void
requireUnshardedWorkloads(const BenchOptions &options,
                          const std::vector<WorkloadSpec> &workloads,
                          const char *bench)
{
    if (options.shards > 1)
        tlbpf_fatal(bench, " runs whole streams and does not support "
                           "--shards");
    for (const WorkloadSpec &workload : workloads)
        if (workload.sharded())
            tlbpf_fatal(bench, " runs whole streams and does not "
                               "support sharded workload '",
                        workload.label(), "'");
}

/**
 * Print one figure-style "bar group" row per workload: the full
 * workload × spec grid runs as one engine batch, the table shows
 * accuracy per (workload, spec) cell, and --csv/--json receive
 * long-format (workload, mechanism, accuracy, miss_rate) records.
 */
inline void
printAccuracyFigure(const std::string &caption,
                    const std::vector<WorkloadSpec> &workloads,
                    const std::vector<MechanismSpec> &specs,
                    const BenchOptions &options)
{
    std::vector<SweepJob> jobs;
    jobs.reserve(workloads.size() * specs.size());
    for (const WorkloadSpec &workload : workloads)
        for (const MechanismSpec &spec : specs)
            jobs.push_back(SweepJob::functional(workload, spec,
                                                options.refs));
    std::vector<SweepResult> results = runBatch(options, jobs);

    std::vector<std::string> header = {"workload"};
    for (const MechanismSpec &spec : specs)
        header.push_back(spec.label());
    TableSink table(caption);
    table.header(header);

    MultiSink records = recordSinks(options);
    if (!records.empty())
        records.header({"workload", "mechanism", "accuracy",
                        "miss_rate"});

    std::size_t cell = 0;
    for (const WorkloadSpec &workload : workloads) {
        std::vector<std::string> row = {workload.label()};
        for (const MechanismSpec &spec : specs) {
            const SweepResult &r = results[cell++];
            row.push_back(TablePrinter::num(r.accuracy(), 3));
            if (!records.empty())
                records.row({r.workload, spec.label(),
                             TablePrinter::num(r.accuracy(), 6),
                             TablePrinter::num(r.missRate(), 6)});
        }
        table.row(row);
    }
    table.finish();
    records.finish();
}

} // namespace tlbpf::bench

#endif // TLBPF_BENCH_BENCH_COMMON_HH
