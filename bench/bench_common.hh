/**
 * @file
 * Shared helpers for the bench binaries that regenerate the paper's
 * tables and figures.
 */

#ifndef TLBPF_BENCH_BENCH_COMMON_HH
#define TLBPF_BENCH_BENCH_COMMON_HH

#include <cstdio>
#include <string>
#include <vector>

#include "sim/experiment.hh"
#include "util/cli.hh"
#include "util/csv.hh"
#include "util/table_printer.hh"

namespace tlbpf::bench
{

/** Standard options shared by the figure/table binaries. */
struct BenchOptions
{
    std::uint64_t refs = kDefaultBenchRefs;
    std::string csvPath;   ///< optional machine-readable dump
    std::vector<std::string> apps; ///< restrict to a subset
};

inline BenchOptions
parseBenchOptions(int argc, const char *const *argv,
                  std::vector<std::string> extra_known = {})
{
    std::vector<std::string> known = {"refs", "csv", "apps"};
    for (auto &k : extra_known)
        known.push_back(k);
    CliArgs args(argc, argv, known);
    BenchOptions options;
    options.refs = static_cast<std::uint64_t>(
        args.getInt("refs", static_cast<std::int64_t>(
                                kDefaultBenchRefs)));
    options.csvPath = args.get("csv");
    if (args.has("apps"))
        options.apps = parseStringList(args.get("apps"));
    return options;
}

/** Print one figure-style "bar group" row per application. */
inline void
printAccuracyFigure(const std::string &caption,
                    const std::vector<const AppModel *> &apps,
                    const std::vector<PrefetcherSpec> &specs,
                    const BenchOptions &options)
{
    std::vector<std::string> header = {"app"};
    for (const PrefetcherSpec &spec : specs)
        header.push_back(spec.label());
    TablePrinter table(std::move(header));
    table.caption(caption);

    std::unique_ptr<CsvWriter> csv;
    if (!options.csvPath.empty()) {
        csv = std::make_unique<CsvWriter>(options.csvPath);
        std::vector<std::string> csv_header = {"app", "mechanism",
                                               "accuracy",
                                               "miss_rate"};
        csv->writeRow(csv_header);
    }

    for (const AppModel *app : apps) {
        if (!options.apps.empty() &&
            std::find(options.apps.begin(), options.apps.end(),
                      app->name) == options.apps.end())
            continue;
        std::vector<std::string> row = {app->name};
        auto cells = accuracySweep(app->name, specs, options.refs);
        for (const AccuracyCell &cell : cells) {
            row.push_back(TablePrinter::num(cell.accuracy, 3));
            if (csv)
                csv->writeRow({app->name, cell.label,
                               TablePrinter::num(cell.accuracy, 6),
                               TablePrinter::num(cell.missRate, 6)});
        }
        table.addRow(std::move(row));
        std::fflush(stdout);
    }
    table.print();
}

} // namespace tlbpf::bench

#endif // TLBPF_BENCH_BENCH_COMMON_HH
