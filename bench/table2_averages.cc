/**
 * @file
 * Regenerates paper Table 2: average and TLB-miss-rate-weighted
 * average prediction accuracy of DP, RP, ASP and MP over all 56
 * applications (s = 2, r = 256, direct-mapped; 128-entry FA TLB,
 * b = 16).
 *
 * Paper reference values: average  DP 0.43 > RP 0.29 ~ ASP 0.28 > MP
 * 0.11; weighted RP 0.86 > DP 0.82 > ASP 0.73 >> MP 0.04.  The
 * reproduction targets the *orderings*, not the absolute numbers.
 *
 * The 56 × 4 grid runs as one SweepEngine batch; averages are folded
 * from the ordered results, so every thread count prints identical
 * numbers and writes identical --csv/--json bytes.
 *
 * Usage: table2_averages [--refs N] [--threads N] [--shards N]
 *                        [--csv out.csv] [--json out.json]
 *                        [--workload spec,...] [--mech spec,...]
 *                        [--list-mechanisms]
 */

#include <cstdio>

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace tlbpf;
    using namespace tlbpf::bench;

    BenchOptions options = parseBenchOptions(argc, argv);
    // Default: DP RP ASP MP (Table 2's comparison set).
    std::vector<MechanismSpec> specs =
        selectedMechanisms(options, table2Specs());

    std::printf("=== Table 2: average prediction accuracy over the 56 "
                "applications (s=2, r=256) ===\n");

    std::vector<std::string> registry_names;
    for (const AppModel &app : appRegistry())
        registry_names.push_back(app.name);
    std::vector<WorkloadSpec> workloads =
        selectedWorkloads(options, registry_names);
    std::vector<SweepJob> jobs;
    jobs.reserve(workloads.size() * specs.size());
    for (const WorkloadSpec &workload : workloads)
        for (const MechanismSpec &spec : specs)
            jobs.push_back(SweepJob::functional(workload, spec,
                                                options.refs));
    std::vector<SweepResult> results = runBatch(options, jobs);

    std::vector<std::string> names = mechanismColumnLabels(specs);
    MultiSink records = recordSinks(options);
    if (!records.empty()) {
        std::vector<std::string> header = {"workload", "miss_rate"};
        for (const std::string &name : names)
            header.push_back(name);
        records.header(header);
    }

    std::size_t cols = specs.size();
    std::vector<double> sum(cols, 0.0);
    std::vector<double> weighted_sum(cols, 0.0);
    double weight_total = 0.0;
    std::size_t n = 0;

    std::size_t cell = 0;
    for (const WorkloadSpec &workload : workloads) {
        (void)workload;
        std::vector<double> acc(cols, 0.0);
        double miss_rate = 0.0;
        for (std::size_t i = 0; i < cols; ++i) {
            const SweepResult &r = results[cell++];
            acc[i] = r.accuracy();
            miss_rate = r.missRate();
        }
        for (std::size_t i = 0; i < cols; ++i) {
            sum[i] += acc[i];
            weighted_sum[i] += miss_rate * acc[i];
        }
        weight_total += miss_rate;
        ++n;
        if (!records.empty()) {
            std::vector<std::string> row = {
                results[cell - 1].workload,
                TablePrinter::num(miss_rate, 6)};
            for (std::size_t i = 0; i < cols; ++i)
                row.push_back(TablePrinter::num(acc[i], 6));
            records.row(row);
        }
    }
    records.finish();

    TableSink out;
    out.header({"Scheme", "Average (sum p_i / n)",
                "Weighted (sum m_i*p_i / sum m_i)"});
    for (std::size_t i = 0; i < cols; ++i) {
        out.row({names[i],
                 TablePrinter::num(sum[i] / static_cast<double>(n), 3),
                 TablePrinter::num(weighted_sum[i] / weight_total, 3)});
    }
    out.finish();
    std::printf("(paper: avg DP .43 RP .29 ASP .28 MP .11; weighted "
                "RP .86 DP .82 ASP .73 MP .04)\n");
    return 0;
}
