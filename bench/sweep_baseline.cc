/**
 * @file
 * Sweep-engine throughput baseline: runs a fixed mixed
 * functional/timing job batch serially and in parallel, measures
 * cells/second, and writes a JSON record (default BENCH_sweep.json)
 * so the perf trajectory of the parallel sweep infrastructure is
 * tracked across PRs.
 *
 * The batch is the Table-2 mechanism set crossed with the 8
 * high-miss-rate applications (functional), plus RP/DP timing cells
 * on the Table-3 applications — a miniature of the full paper
 * regeneration.  Determinism is asserted, not assumed: the parallel
 * run's counters must equal the serial run's.
 *
 * A second phase times the shard map/reduce path: one cell sharded
 * kShardFanout ways, merged, and checked bit-identical against the
 * unsharded run, so BENCH_sweep.json also tracks shard-merge
 * overhead (shards replay the stream prefix to warm state exactly,
 * so the merged wall-clock cost above 1x is the price of exactness).
 *
 * Usage: sweep_baseline [--refs N] [--threads N] [--json out.json]
 */

#include <chrono>
#include <cstdio>

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace tlbpf;
    using namespace tlbpf::bench;
    using Clock = std::chrono::steady_clock;

    BenchOptions options = parseBenchOptions(argc, argv);
    if (options.jsonPath.empty())
        options.jsonPath = "BENCH_sweep.json";

    std::vector<SweepJob> jobs;
    for (const std::string &app : highMissRateApps())
        for (const PrefetcherSpec &spec : table2Specs())
            jobs.push_back(SweepJob::functional(WorkloadSpec::app(app),
                                                spec, options.refs));
    for (const std::string &app : table3Apps()) {
        for (Scheme scheme : {Scheme::RP, Scheme::DP}) {
            PrefetcherSpec spec;
            spec.scheme = scheme;
            spec.table = TableConfig{256, TableAssoc::Direct};
            spec.slots = 2;
            jobs.push_back(SweepJob::timed(WorkloadSpec::app(app), spec,
                                           options.refs));
        }
    }

    std::printf("=== Sweep-engine baseline: %zu cells, %llu refs/cell "
                "===\n",
                jobs.size(),
                static_cast<unsigned long long>(options.refs));

    auto time_run = [&](unsigned threads,
                        std::vector<SweepResult> &out) {
        SweepEngine engine(threads);
        auto start = Clock::now();
        out = engine.run(jobs);
        return std::chrono::duration<double>(Clock::now() - start)
            .count();
    };

    std::vector<SweepResult> serial_results;
    std::vector<SweepResult> parallel_results;
    double serial_s = time_run(1, serial_results);
    double parallel_s = time_run(options.threads, parallel_results);

    // The engine's contract, spot-checked on every baseline run.
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        const SimResult &a = serial_results[i].functional;
        const SimResult &b = parallel_results[i].functional;
        if (a.misses != b.misses || a.pbHits != b.pbHits ||
            a.prefetchesIssued != b.prefetchesIssued)
            tlbpf_fatal("parallel run diverged from serial at cell ",
                        i);
    }

    double cells = static_cast<double>(jobs.size());
    double serial_cps = cells / serial_s;
    double parallel_cps = cells / parallel_s;

    // Shard map/reduce overhead on one representative cell.
    constexpr std::uint32_t kShardFanout = 4;
    PrefetcherSpec dp;
    dp.scheme = Scheme::DP;
    dp.table = TableConfig{256, TableAssoc::Direct};
    dp.slots = 2;
    std::vector<SweepJob> shard_cell = {SweepJob::functional(
        WorkloadSpec::app("mcf"), dp, options.refs)};

    auto t0 = Clock::now();
    SweepEngine shard_serial(1);
    SweepResult unsharded = shard_serial.run(shard_cell)[0];
    double unsharded_s =
        std::chrono::duration<double>(Clock::now() - t0).count();

    t0 = Clock::now();
    SweepEngine shard_engine(options.threads);
    SweepResult merged =
        shard_engine.runSharded(shard_cell, kShardFanout)[0];
    double sharded_s =
        std::chrono::duration<double>(Clock::now() - t0).count();

    if (merged.functional.refs != unsharded.functional.refs ||
        merged.functional.misses != unsharded.functional.misses ||
        merged.functional.pbHits != unsharded.functional.pbHits ||
        merged.functional.prefetchesIssued !=
            unsharded.functional.prefetchesIssued)
        tlbpf_fatal("sharded-and-merged counters diverged from the "
                    "unsharded cell");

    TableSink table;
    table.header({"mode", "threads", "seconds", "cells/sec"});
    table.row({"serial", "1", TablePrinter::num(serial_s, 3),
               TablePrinter::num(serial_cps, 2)});
    table.row({"parallel", std::to_string(options.threads),
               TablePrinter::num(parallel_s, 3),
               TablePrinter::num(parallel_cps, 2)});
    table.finish();
    std::printf("speedup: %.2fx (hardware concurrency: %u)\n",
                serial_s / parallel_s, ThreadPool::defaultThreadCount());
    std::printf("shard map/reduce (%u shards, merged == unsharded): "
                "%.3fs vs %.3fs unsharded (overhead %.2fx)\n",
                kShardFanout, sharded_s, unsharded_s,
                sharded_s / unsharded_s);

    JsonSink json(options.jsonPath);
    json.header({"bench", "cells", "refs_per_cell", "threads",
                 "hardware_concurrency", "serial_seconds",
                 "parallel_seconds", "serial_cells_per_sec",
                 "parallel_cells_per_sec", "speedup", "shard_fanout",
                 "shard_unsharded_seconds", "shard_merged_seconds",
                 "shard_overhead"});
    json.row({"sweep_baseline", std::to_string(jobs.size()),
              std::to_string(options.refs),
              std::to_string(options.threads),
              std::to_string(ThreadPool::defaultThreadCount()),
              TablePrinter::num(serial_s, 4),
              TablePrinter::num(parallel_s, 4),
              TablePrinter::num(serial_cps, 2),
              TablePrinter::num(parallel_cps, 2),
              TablePrinter::num(serial_s / parallel_s, 3),
              std::to_string(kShardFanout),
              TablePrinter::num(unsharded_s, 4),
              TablePrinter::num(sharded_s, 4),
              TablePrinter::num(sharded_s / unsharded_s, 3)});
    json.finish();
    std::printf("wrote %s\n", options.jsonPath.c_str());
    return 0;
}
