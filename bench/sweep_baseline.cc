/**
 * @file
 * Sweep-engine throughput baseline: runs a fixed mixed
 * functional/timing job batch serially and in parallel, measures
 * cells/second, and writes a JSON record (default BENCH_sweep.json)
 * so the perf trajectory of the parallel sweep infrastructure is
 * tracked across PRs.
 *
 * The batch is the Table-2 mechanism set crossed with the 8
 * high-miss-rate applications (functional), plus RP/DP timing cells
 * on the Table-3 applications — a miniature of the full paper
 * regeneration.  Determinism is asserted, not assumed: the parallel
 * run's counters must equal the serial run's.
 *
 * A second phase times the shard map/reduce path in both warm-up
 * modes on a single-worker engine (so wall-clock equals total CPU):
 * one cell sharded kShardFanout ways, merged, and checked
 * bit-identical against the unsharded run.  Replay warm-up
 * reconstructs each shard's state by replaying its stream prefix
 * (total CPU ~(N+1)/2x — the price of exactness with independent
 * shards); checkpoint warm-up chains end-of-window SimState
 * snapshots, targeting ~1x.  BENCH_sweep.json records both
 * (shard_overhead_replay, shard_overhead) so the CPU cost of
 * --shards is tracked across PRs.
 *
 * A third phase times mechanism-registry resolution: how many
 * parse+build round-trips per second the MechanismRegistry sustains
 * (spec string -> resolved MechanismSpec -> constructed prefetcher),
 * so the registry's construction overhead is tracked in
 * BENCH_sweep.json alongside cells/sec.
 *
 * A fourth phase measures the single-pass multi-mechanism win: the
 * full figure-7 mechanism set replayed from one trace on a one-worker
 * engine, timed in per-mechanism mode (the trace is decoded once per
 * mechanism) and single-pass mode (decoded once for the whole sweep),
 * with the counters checked identical between the modes.  The ratio
 * lands in BENCH_sweep.json as single_pass_speedup, and the
 * single-cell inner-loop throughput as refs_per_sec, so hot-loop
 * regressions are visible independently of engine overhead.
 *
 * A fifth phase stresses the work-stealing scheduler with the
 * cost-skew it exists for: a batch mixing 8-shard checkpoint chains
 * (each ~a full cell of work in one task) with a crowd of cells at
 * 1/16th the budget, run on a --threads-worker engine.  The pool's
 * telemetry lands in BENCH_sweep.json (steal_events,
 * worker_busy_fraction_min/max, lpt_imbalance) so scheduler payoff —
 * and regression — is visible in the committed perf trajectory.
 *
 * A sixth phase round-trips the functional grid through an
 * in-process tlbpf-server (loopback TCP, ephemeral port): a cold
 * submission that simulates every cell (service_cells_per_sec — the
 * protocol + engine path end to end) and an identical resubmission
 * that must be served entirely from the result cache
 * (cache_hit_cells_per_sec; re-simulating even one cell is fatal).
 * The server's lifetime hit fraction lands as cache_hit_rate, so
 * both the wire overhead and the cache's payoff are tracked.
 *
 * A seventh phase runs the same grid through the distributed
 * Dispatcher with two in-process workers pulling leases against a
 * 1-thread local engine — the lease/complete cycle a tlbpf-worker
 * fleet drives, minus the wire.  Byte-identity against the serial run
 * is asserted and the fleet must carry at least one cell; the record
 * gains dispatch_cells_per_sec, lease_reclaims and
 * worker_utilization_min/max so fleet scheduling health is part of
 * the committed perf trajectory.
 *
 * Because the committed record is produced in a 1-core container
 * where parallel speedup is unmeasurable, the baseline also times
 * the *same* batch as a raw serial loop (no engine, no pool) vs a
 * 1-worker engine and records the ratio as
 * serial_vs_parallel_overhead: a scheduler that starts taxing every
 * job shows up there even when speedup reads null.
 *
 * Usage: sweep_baseline [--refs N] [--threads N] [--json out.json]
 *                       [--mech spec,...] [--list-mechanisms]
 */

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>

#include "bench_common.hh"
#include "dispatch/dispatcher.hh"
#include "service/client.hh"
#include "service/server.hh"
#include "trace/trace_file.hh"

// A sanitized build runs the whole suite 2-20x slower, so its timings
// must never be mistaken for a baseline.  The record carries the
// build flavor and CI asserts it is false for the committed numbers.
// TLBPF_SANITIZED_BUILD comes from -DTLBPF_SANITIZE=...; the compiler
// macros catch builds that passed -fsanitize= by hand.
#if defined(TLBPF_SANITIZED_BUILD) || defined(__SANITIZE_ADDRESS__) || \
    defined(__SANITIZE_THREAD__)
#define TLBPF_BENCH_SANITIZED true
#else
#define TLBPF_BENCH_SANITIZED false
#endif

int
main(int argc, char **argv)
{
    using namespace tlbpf;
    using namespace tlbpf::bench;
    using Clock = std::chrono::steady_clock;

    BenchOptions options = parseBenchOptions(argc, argv);
    if (options.jsonPath.empty())
        options.jsonPath = "BENCH_sweep.json";

    std::vector<SweepJob> jobs;
    std::vector<MechanismSpec> functional_mechs =
        selectedMechanisms(options, table2Specs());
    for (const std::string &app : highMissRateApps())
        for (const MechanismSpec &spec : functional_mechs)
            jobs.push_back(SweepJob::functional(WorkloadSpec::app(app),
                                                spec, options.refs));
    std::vector<MechanismSpec> timed_mechs = selectedMechanisms(
        options, std::vector<std::string>{"RP", "DP,256,D"});
    for (const std::string &app : table3Apps())
        for (const MechanismSpec &spec : timed_mechs)
            jobs.push_back(SweepJob::timed(WorkloadSpec::app(app), spec,
                                           options.refs));

    std::printf("=== Sweep-engine baseline: %zu cells, %llu refs/cell "
                "===\n",
                jobs.size(),
                static_cast<unsigned long long>(options.refs));

    auto time_run = [&](unsigned threads,
                        std::vector<SweepResult> &out) {
        SweepEngine engine(threads);
        auto start = Clock::now();
        out = engine.run(jobs);
        return std::chrono::duration<double>(Clock::now() - start)
            .count();
    };

    // One untimed pass first, so the cold-start cost (page faults,
    // lazily-built registry state) lands on no timed variant — the
    // serial/parallel/raw comparisons below are all warm.
    for (const SweepJob &job : jobs)
        (void)runSweepJob(job);

    std::vector<SweepResult> serial_results;
    std::vector<SweepResult> parallel_results;
    double serial_s = time_run(1, serial_results);
    double parallel_s = time_run(options.threads, parallel_results);

    // The same batch as a raw loop — no engine, no deques, no
    // telemetry.  The 1-worker engine time over this is the pure
    // per-job scheduling tax, the regression signal a single-core
    // host can still measure.
    std::vector<SweepResult> raw_results(jobs.size());
    auto raw_start = Clock::now();
    for (std::size_t i = 0; i < jobs.size(); ++i)
        raw_results[i] = runSweepJob(jobs[i]);
    double raw_s =
        std::chrono::duration<double>(Clock::now() - raw_start)
            .count();
    double scheduler_overhead = serial_s / raw_s;

    // The engine's contract, spot-checked on every baseline run.
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        const SimResult &a = serial_results[i].functional;
        const SimResult &b = parallel_results[i].functional;
        const SimResult &c = raw_results[i].functional;
        if (a.misses != b.misses || a.pbHits != b.pbHits ||
            a.prefetchesIssued != b.prefetchesIssued)
            tlbpf_fatal("parallel run diverged from serial at cell ",
                        i);
        if (a.misses != c.misses || a.pbHits != c.pbHits ||
            a.prefetchesIssued != c.prefetchesIssued)
            tlbpf_fatal("engine run diverged from the raw loop at "
                        "cell ",
                        i);
    }

    double cells = static_cast<double>(jobs.size());
    double serial_cps = cells / serial_s;
    double parallel_cps = cells / parallel_s;

    // Shard map/reduce overhead on one representative cell, both
    // warm-up modes.  A one-worker engine makes wall-clock equal
    // total CPU, which is the cost --shards must not inflate; each
    // variant is timed best-of-kShardRounds so a scheduling hiccup on
    // a busy host does not masquerade as warm-up overhead.
    constexpr std::uint32_t kShardFanout = 8;
    constexpr int kShardRounds = 3;
    MechanismSpec dp = parseMechanismOrDie("DP,256,D");
    std::vector<SweepJob> shard_cell = {SweepJob::functional(
        WorkloadSpec::app("mcf"), dp, options.refs)};
    SweepEngine shard_serial(1);

    auto best_of = [&](auto &&run_once) {
        double best = 0;
        for (int round = 0; round < kShardRounds; ++round) {
            auto start = Clock::now();
            run_once();
            double seconds =
                std::chrono::duration<double>(Clock::now() - start)
                    .count();
            if (round == 0 || seconds < best)
                best = seconds;
        }
        return best;
    };

    SweepResult unsharded;
    double unsharded_s = best_of(
        [&] { unsharded = shard_serial.run(shard_cell)[0]; });

    auto time_sharded = [&](ShardWarmup warmup) {
        return best_of([&] {
            SweepResult merged = shard_serial.runSharded(
                shard_cell, kShardFanout, warmup)[0];
            if (merged.functional.refs != unsharded.functional.refs ||
                merged.functional.misses !=
                    unsharded.functional.misses ||
                merged.functional.pbHits !=
                    unsharded.functional.pbHits ||
                merged.functional.prefetchesIssued !=
                    unsharded.functional.prefetchesIssued)
                tlbpf_fatal("sharded-and-merged counters (",
                            shardWarmupName(warmup),
                            " warm-up) diverged from the unsharded "
                            "cell");
        });
    };
    double replay_s = time_sharded(ShardWarmup::Replay);
    double checkpoint_s = time_sharded(ShardWarmup::Checkpoint);

    // Registry construction overhead: parse+build round-trips per
    // second over a representative spec mix (one per builtin family
    // plus the composite).  This is the per-cell setup cost the open
    // registry adds over the old closed-enum switch.
    const char *const kRegistrySpecs[] = {
        "DP,256,D", "RP", "ASP,256,D", "MP,256,D", "SP,1", "ASQ",
        "hybrid(dp+sp)",
    };
    constexpr int kRegistryRounds = 2000;
    auto t0 = Clock::now();
    std::uint64_t builds = 0;
    volatile const void *sink = nullptr; // keep the builds observable
    for (int round = 0; round < kRegistryRounds; ++round) {
        for (const char *text : kRegistrySpecs) {
            PageTable pt;
            MechanismSpec spec = MechanismSpec::parse(text);
            auto built = spec.build(pt);
            sink = built.get();
            ++builds;
        }
    }
    (void)sink;
    double registry_s =
        std::chrono::duration<double>(Clock::now() - t0).count();
    double builds_per_sec = static_cast<double>(builds) / registry_s;

    // Single-pass multi-mechanism speedup on the figure-7 mechanism
    // set, replayed from a trace: the stream whose redundancy the
    // single-pass mode removes.  The bench dumps its own temp trace
    // (there is no committed trace of useful length), then times both
    // pass modes on a one-worker engine so wall-clock equals total
    // CPU; the counters must not differ between the modes.
    const std::string pass_trace = "sweep_baseline_stream.tpf";
    {
        auto stream = WorkloadSpec::app("mcf").build(options.refs);
        dumpTrace(*stream, pass_trace);
    }
    std::vector<SweepJob> pass_jobs;
    for (const MechanismSpec &spec : figure7Specs())
        pass_jobs.push_back(SweepJob::functional(
            WorkloadSpec::trace(pass_trace), spec, options.refs));
    SweepEngine pass_engine(1);
    std::vector<SweepResult> per_mech_results;
    std::vector<SweepResult> single_pass_results;
    double per_mech_s = best_of([&] {
        per_mech_results =
            pass_engine.run(pass_jobs, PassMode::PerMechanism);
    });
    double single_pass_s = best_of([&] {
        single_pass_results =
            pass_engine.run(pass_jobs, PassMode::SinglePass);
    });
    for (std::size_t i = 0; i < pass_jobs.size(); ++i) {
        const SimResult &a = per_mech_results[i].functional;
        const SimResult &b = single_pass_results[i].functional;
        if (a.refs != b.refs || a.misses != b.misses ||
            a.pbHits != b.pbHits ||
            a.prefetchesIssued != b.prefetchesIssued)
            tlbpf_fatal("single-pass run diverged from per-mechanism "
                        "at cell ",
                        i, " (", pass_jobs[i].spec.label(), ")");
    }
    std::remove(pass_trace.c_str());
    double single_pass_speedup = per_mech_s / single_pass_s;
    // Inner-loop throughput of one cell, free of engine overhead: the
    // unsharded single-cell timing above is exactly that.
    double refs_per_sec =
        static_cast<double>(options.refs) / unsharded_s;

    // Skew-stress the work-stealing scheduler: two full-budget cells
    // expanded into 8-shard checkpoint chains (each chain is one
    // ~full-cell task) interleaved with twelve cells at 1/16th the
    // budget — the 10-50x cost spread the per-worker deques + LPT
    // seeding exist for.  Runs on the requested --threads so the
    // multi-core CI runs record real steal traffic; the telemetry
    // fields are well-defined (and steal_events simply 0) on one
    // worker too.
    const char *const kCheapApps[] = {"gcc",     "mcf",    "swim",
                                      "galgel",  "ammp",   "applu",
                                      "apsi",    "lucas",  "mgrid",
                                      "wupwise", "vortex", "twolf"};
    std::uint64_t cheap_refs =
        std::max<std::uint64_t>(options.refs / 16, 1);
    // Hand-built plan: only the heavy cells fan out (expandShards
    // would shard the cheap ones too), so the batch really is chains
    // next to trivial singles.
    ShardPlan skew_plan;
    std::size_t cheap_i = 0;
    for (const char *heavy : {"mcf", "gcc"}) {
        for (std::uint32_t k = 0; k < 8; ++k)
            skew_plan.jobs.push_back(SweepJob::functional(
                WorkloadSpec::app(heavy).withShard(k, 8), dp,
                options.refs));
        skew_plan.groupSizes.push_back(8);
        for (int k = 0; k < 6; ++k) {
            skew_plan.jobs.push_back(SweepJob::functional(
                WorkloadSpec::app(kCheapApps[cheap_i++ % 12]), dp,
                cheap_refs));
            skew_plan.groupSizes.push_back(1);
        }
    }
    SweepEngine skew_engine(options.threads);
    auto skew_start = Clock::now();
    std::vector<SweepResult> skew_results =
        skew_engine.runSharded(skew_plan, ShardWarmup::Checkpoint);
    double skew_s =
        std::chrono::duration<double>(Clock::now() - skew_start)
            .count();
    const ThreadPool::BatchStats &sched = skew_engine.lastBatchStats();
    std::vector<SweepResult> skew_serial =
        SweepEngine(1).runSharded(skew_plan, ShardWarmup::Checkpoint);
    for (std::size_t i = 0; i < skew_results.size(); ++i)
        if (skew_results[i].functional.misses !=
                skew_serial[i].functional.misses ||
            skew_results[i].functional.pbHits !=
                skew_serial[i].functional.pbHits)
            tlbpf_fatal("skewed batch diverged from serial at cell ",
                        i);

    // The sweep service round trip: the functional grid submitted to
    // an in-process server over loopback TCP, cold (every cell
    // simulated, so the number is protocol + engine end to end) and
    // hot (the identical resubmission, answered purely from the
    // result cache — a single re-simulated cell is a contract
    // violation, not a slowdown).
    ServerOptions service_options;
    service_options.port = 0; // ephemeral: parallel CI runs can't clash
    service_options.threads = options.threads;
    SweepServer server(service_options);
    std::thread serving([&] { server.serve(); });
    SweepRequest service_request;
    for (const std::string &app : highMissRateApps())
        service_request.workloads.push_back("app:" + app);
    for (const MechanismSpec &spec : functional_mechs)
        service_request.mechanisms.push_back(spec.canonical());
    service_request.refs = options.refs;
    auto service_sweep = [&] {
        return ServiceClient("127.0.0.1", server.port())
            .sweep(service_request);
    };
    auto service_start = Clock::now();
    ServiceClient::SweepOutcome service_cold = service_sweep();
    double service_s =
        std::chrono::duration<double>(Clock::now() - service_start)
            .count();
    auto cache_start = Clock::now();
    ServiceClient::SweepOutcome service_hot = service_sweep();
    double cache_hit_s =
        std::chrono::duration<double>(Clock::now() - cache_start)
            .count();
    if (service_cold.done.simulated != service_cold.done.cells)
        tlbpf_fatal("cold service sweep was unexpectedly cached");
    if (service_hot.done.simulated != 0)
        tlbpf_fatal("resubmitted service sweep re-simulated ",
                    service_hot.done.simulated, " of ",
                    service_hot.done.cells, " cells");
    // The wire is exact: the streamed counters must equal the local
    // engine's (the functional grid is the front of `jobs`).
    for (std::size_t i = 0; i < service_cold.results.size(); ++i)
        if (!(service_cold.results[i].functional ==
              serial_results[i].functional) ||
            !(service_hot.results[i].functional ==
              serial_results[i].functional))
            tlbpf_fatal("service sweep diverged from the local "
                        "engine at cell ",
                        i);
    StatsReply service_stats =
        ServiceClient("127.0.0.1", server.port()).stats();
    ServiceClient("127.0.0.1", server.port()).shutdown();
    serving.join();
    double service_cells =
        static_cast<double>(service_cold.done.cells);
    double service_cps = service_cells / service_s;
    double cache_hit_cps = service_cells / cache_hit_s;
    double cache_hit_rate =
        service_stats.cells
            ? static_cast<double>(service_stats.cacheHits) /
                  static_cast<double>(service_stats.cells)
            : 0.0;

    // The distributed dispatcher: the functional grid again, on a
    // deliberately narrow (1-thread) local engine with two in-process
    // workers pulling leases through the Dispatcher API — the same
    // lease/complete cycle tlbpf-worker drives over TCP, minus the
    // wire.  Byte-identity against the serial run is asserted (the
    // grid is the front of `jobs`), and the fleet must actually carry
    // cells: a dispatcher that stops granting leases fails the bench
    // rather than quietly recording a local-only number.
    std::vector<SweepJob> fleet_jobs;
    for (const std::string &app : highMissRateApps())
        for (const MechanismSpec &spec : functional_mechs)
            fleet_jobs.push_back(SweepJob::functional(
                WorkloadSpec::app(app), spec, options.refs));
    ShardPlan fleet_plan;
    fleet_plan.jobs = fleet_jobs;
    fleet_plan.groupSizes.assign(fleet_jobs.size(), 1);
    SweepEngine fleet_engine(1);
    Dispatcher fleet_dispatcher(fleet_engine);
    std::atomic<bool> fleet_done{false};
    auto pull_leases = [&] {
        std::uint64_t id = fleet_dispatcher.registerWorker(1);
        LeaseGrant grant;
        while (!fleet_done.load()) {
            if (!fleet_dispatcher.lease(id, grant)) {
                std::this_thread::yield();
                continue;
            }
            std::vector<SweepResult> computed;
            computed.reserve(grant.jobs.size());
            for (const SweepJob &job : grant.jobs)
                computed.push_back(runSweepJob(job));
            fleet_dispatcher.completeLease(grant.lease,
                                           std::move(computed));
        }
        fleet_dispatcher.unregisterWorker(id);
    };
    std::thread fleet_worker1(pull_leases);
    std::thread fleet_worker2(pull_leases);
    while (fleet_dispatcher.counters().workers != 2)
        std::this_thread::yield(); // both registered before the batch
    auto fleet_start = Clock::now();
    std::vector<SweepResult> fleet_results = fleet_dispatcher.runBatch(
        fleet_plan, ShardWarmup::Replay, PassMode::PerMechanism,
        [](std::size_t, const SweepResult &) {});
    double fleet_s =
        std::chrono::duration<double>(Clock::now() - fleet_start)
            .count();
    fleet_done.store(true);
    fleet_worker1.join();
    fleet_worker2.join();
    Dispatcher::BatchStats fleet_batch =
        fleet_dispatcher.lastBatchStats();
    for (std::size_t i = 0; i < fleet_results.size(); ++i)
        if (!(fleet_results[i].functional ==
              serial_results[i].functional))
            tlbpf_fatal("dispatched sweep diverged from the serial "
                        "run at cell ",
                        i);
    if (fleet_batch.remoteCells == 0)
        tlbpf_fatal("the two-worker fleet never carried a cell");
    double dispatch_cps =
        static_cast<double>(fleet_jobs.size()) / fleet_s;
    double fleet_util_min = 1.0, fleet_util_max = 0.0;
    for (const auto &entry : fleet_batch.workerBusy) {
        double utilization =
            fleet_s > 0 ? entry.second / fleet_s : 0.0;
        fleet_util_min = std::min(fleet_util_min, utilization);
        fleet_util_max = std::max(fleet_util_max, utilization);
    }

    // On a single-core host — or a run pinned to --threads 1 — the
    // serial-vs-parallel comparison only measures scheduling noise;
    // record null so trend tracking never mistakes a ~1.0x "speedup"
    // for a regression or an improvement.
    unsigned hardware = ThreadPool::defaultThreadCount();
    bool reliable = hardware >= 2 && options.threads >= 2;

    TableSink table;
    table.header({"mode", "threads", "seconds", "cells/sec"});
    table.row({"serial", "1", TablePrinter::num(serial_s, 3),
               TablePrinter::num(serial_cps, 2)});
    table.row({"parallel", std::to_string(options.threads),
               TablePrinter::num(parallel_s, 3),
               TablePrinter::num(parallel_cps, 2)});
    table.finish();
    if (reliable)
        std::printf("speedup: %.2fx (hardware concurrency: %u)\n",
                    serial_s / parallel_s, hardware);
    else
        std::printf("speedup: n/a (hardware concurrency: %u; a "
                    "single-core host cannot measure parallel "
                    "speedup)\n",
                    hardware);
    std::printf("shard warm-up (%u shards, 1 worker, merged == "
                "unsharded): replay %.3fs (%.2fx), checkpoint %.3fs "
                "(%.2fx) vs %.3fs unsharded\n",
                kShardFanout, replay_s, replay_s / unsharded_s,
                checkpoint_s, checkpoint_s / unsharded_s,
                unsharded_s);
    std::printf("registry parse+build: %.0f builds/sec (%llu builds "
                "in %.3fs)\n",
                builds_per_sec,
                static_cast<unsigned long long>(builds), registry_s);
    std::printf("single-pass (fig7 set, %zu mechanisms, trace "
                "replay): %.3fs vs %.3fs per-mechanism = %.2fx; "
                "one cell sustains %.2fM refs/sec\n",
                pass_jobs.size(), single_pass_s, per_mech_s,
                single_pass_speedup, refs_per_sec / 1e6);
    std::printf("scheduler: 1-worker engine / raw loop = %.3fx "
                "per-job overhead\n",
                scheduler_overhead);
    std::printf("skewed batch (%zu tasks: 2x 8-shard chains + 12 "
                "cheap cells, %u worker%s): %.3fs, %llu steals, %llu "
                "backoffs, busy %.2f..%.2f, lpt imbalance %.3f\n",
                skew_plan.groupSizes.size(), // each chain is 1 task
                skew_engine.threads(),
                skew_engine.threads() == 1 ? "" : "s", skew_s,
                static_cast<unsigned long long>(sched.stealEvents()),
                static_cast<unsigned long long>(
                    sched.backoffEvents()),
                sched.busyFractionMin(), sched.busyFractionMax(),
                sched.lptImbalance);
    std::printf("service (loopback TCP, %zu cells): cold %.3fs "
                "(%.1f cells/sec), cached resubmit %.3fs (%.0f "
                "cells/sec), lifetime hit rate %.2f\n",
                service_cold.results.size(), service_s, service_cps,
                cache_hit_s, cache_hit_cps, cache_hit_rate);
    std::printf("dispatch (2-worker fleet, 1-thread local engine, "
                "%zu cells): %.3fs (%.1f cells/sec), %llu remote, "
                "%llu reclaims, worker utilization %.2f..%.2f\n",
                fleet_jobs.size(), fleet_s, dispatch_cps,
                static_cast<unsigned long long>(
                    fleet_batch.remoteCells),
                static_cast<unsigned long long>(
                    fleet_batch.leaseReclaims),
                fleet_util_min, fleet_util_max);

    JsonSink json(options.jsonPath);
    json.header({"bench", "sanitized", "cells", "refs_per_cell",
                 "threads",
                 "hardware_concurrency", "serial_seconds",
                 "parallel_seconds", "serial_cells_per_sec",
                 "parallel_cells_per_sec", "speedup", "reliable",
                 "serial_vs_parallel_overhead", "shard_fanout",
                 "shard_unsharded_seconds", "shard_replay_seconds",
                 "shard_checkpoint_seconds", "shard_overhead_replay",
                 "shard_overhead", "registry_builds_per_sec",
                 "refs_per_sec", "per_mechanism_seconds",
                 "single_pass_seconds", "single_pass_speedup",
                 "skew_seconds", "steal_events", "backoff_events",
                 "worker_busy_fraction_min",
                 "worker_busy_fraction_max", "lpt_imbalance",
                 "service_cells_per_sec", "cache_hit_cells_per_sec",
                 "cache_hit_rate", "dispatch_cells_per_sec",
                 "lease_reclaims", "worker_utilization_min",
                 "worker_utilization_max"});
    json.row({"sweep_baseline", TLBPF_BENCH_SANITIZED ? "true" : "false",
              std::to_string(jobs.size()),
              std::to_string(options.refs),
              std::to_string(options.threads),
              std::to_string(hardware),
              TablePrinter::num(serial_s, 4),
              TablePrinter::num(parallel_s, 4),
              TablePrinter::num(serial_cps, 2),
              TablePrinter::num(parallel_cps, 2),
              reliable ? TablePrinter::num(serial_s / parallel_s, 3)
                       : std::string("null"),
              reliable ? "true" : "false",
              TablePrinter::num(scheduler_overhead, 3),
              std::to_string(kShardFanout),
              TablePrinter::num(unsharded_s, 4),
              TablePrinter::num(replay_s, 4),
              TablePrinter::num(checkpoint_s, 4),
              TablePrinter::num(replay_s / unsharded_s, 3),
              TablePrinter::num(checkpoint_s / unsharded_s, 3),
              TablePrinter::num(builds_per_sec, 1),
              TablePrinter::num(refs_per_sec, 1),
              TablePrinter::num(per_mech_s, 4),
              TablePrinter::num(single_pass_s, 4),
              TablePrinter::num(single_pass_speedup, 3),
              TablePrinter::num(skew_s, 4),
              std::to_string(sched.stealEvents()),
              std::to_string(sched.backoffEvents()),
              TablePrinter::num(sched.busyFractionMin(), 3),
              TablePrinter::num(sched.busyFractionMax(), 3),
              TablePrinter::num(sched.lptImbalance, 3),
              TablePrinter::num(service_cps, 2),
              TablePrinter::num(cache_hit_cps, 2),
              TablePrinter::num(cache_hit_rate, 3),
              TablePrinter::num(dispatch_cps, 2),
              std::to_string(fleet_batch.leaseReclaims),
              TablePrinter::num(fleet_util_min, 3),
              TablePrinter::num(fleet_util_max, 3)});
    json.finish();
    std::printf("wrote %s\n", options.jsonPath.c_str());
    return 0;
}
