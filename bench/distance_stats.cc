/**
 * @file
 * Analysis tool: the miss-distance distributions that motivate
 * distance prefetching.
 *
 * DP's space argument (paper Section 2.5) rests on the observation
 * that TLB miss streams use few *distinct distances* even when they
 * touch many distinct pages.  For every application this tool reports
 * the number of distinct pages vs distinct distances in the miss
 * stream and how much of the stream the top-8 distances cover — the
 * higher the coverage, the smaller the DP table can be.
 *
 * With --mech, the analysis runs on the *residual* miss stream: TLB
 * misses that the named mechanism's prefetch buffer did not cover.
 * This answers "what pattern is left for a second-level predictor?" —
 * e.g. --mech 'DP,256,D' shows the distances DP fails to absorb.
 * Default is no prefetching, i.e. the raw miss stream as before.
 *
 * Usage: distance_stats [--refs N] [--apps a,b,c] [--threads N]
 *                       [--csv out.csv] [--json out.json]
 *                       [--workload spec,...] [--mech spec]
 *                       [--list-mechanisms]
 */

#include <cstdio>

#include "bench_common.hh"
#include "stats/histogram.hh"
#include "tlb/tlb.hh"

int
main(int argc, char **argv)
{
    using namespace tlbpf;
    using namespace tlbpf::bench;

    BenchOptions options = parseBenchOptions(argc, argv);

    std::printf("=== Miss-distance distribution analysis (refs/app = "
                "%llu) ===\n",
                static_cast<unsigned long long>(options.refs));

    std::vector<std::string> names;
    for (const AppModel &app : appRegistry())
        names.push_back(app.name);
    std::vector<WorkloadSpec> workloads =
        selectedWorkloads(options, names);
    requireUnshardedWorkloads(options, workloads, "distance_stats");
    if (options.mechs.size() > 1)
        tlbpf_fatal("distance_stats analyses one residual stream; "
                    "pass a single --mech spec, got ",
                    options.mechs.size());
    MechanismSpec mech = options.mechs.empty() ? MechanismSpec::none()
                                               : options.mechs.front();

    // One pool cell per workload; each builds its own stream, TLB
    // and histograms and fills its row slot.  WorkloadSpec::build
    // throws (never exits) from the workers, so a bad workload
    // surfaces as one clean fatal after the pool drains.
    std::vector<std::vector<std::string>> rows(workloads.size());
    ThreadPool pool(options.threads);
    auto analyse = [&](std::size_t i) {
        Tlb tlb({128, 0});
        PrefetchBuffer buffer(16);
        PageTable pt;
        auto prefetcher = mech.build(pt);
        SparseHistogram distances;
        SparseHistogram pages;
        Vpn prev = kNoPage;
        PrefetchDecision decision;

        auto stream = workloads[i].build(options.refs);
        MemRef ref;
        while (stream->next(ref)) {
            Vpn vpn = ref.vpn();
            if (tlb.access(vpn))
                continue;
            Tick ready = 0;
            bool covered = buffer.hitAndPromote(vpn, ready);
            std::optional<Vpn> evicted = tlb.insert(vpn);
            if (!covered) {
                // Residual miss: neither TLB nor buffer held it.
                pages.sample(static_cast<std::int64_t>(vpn));
                if (prev != kNoPage)
                    distances.sample(static_cast<std::int64_t>(vpn) -
                                     static_cast<std::int64_t>(prev));
                prev = vpn;
            }
            if (!prefetcher)
                continue;
            decision.clear();
            prefetcher->onMiss(
                TlbMiss{vpn, ref.pc, covered,
                        evicted.value_or(kNoPage)},
                decision);
            for (Vpn target : decision.targets) {
                if (target == vpn || tlb.contains(target) ||
                    buffer.contains(target))
                    continue;
                buffer.insert(target, 0);
            }
        }

        std::string top1 = "-";
        if (distances.total() > 0) {
            auto top = distances.topK(1);
            top1 = std::to_string(top[0].first) + " (" +
                   TablePrinter::num(
                       static_cast<double>(top[0].second) /
                           static_cast<double>(distances.total()),
                       2) +
                   ")";
        }
        rows[i] = {workloads[i].label(),
                   TablePrinter::num(distances.total()),
                   TablePrinter::num(
                       static_cast<std::uint64_t>(pages.distinct())),
                   TablePrinter::num(static_cast<std::uint64_t>(
                       distances.distinct())),
                   TablePrinter::num(distances.coverage(8), 3),
                   top1};
    };
    try {
        pool.parallelFor(workloads.size(), analyse);
    } catch (const std::invalid_argument &e) {
        tlbpf_fatal(e.what());
    }

    std::string caption = "128-entry FA TLB; distances between "
                          "successive missing pages";
    if (mech.name != "none")
        caption += " (residual stream under " + mech.label() + ")";
    TableSink out(caption);
    std::vector<std::string> header = {"workload", "misses",
                                       "distinct pages",
                                       "distinct distances",
                                       "top-8 coverage",
                                       "top-1 distance"};
    out.header(header);
    MultiSink records = recordSinks(options);
    if (!records.empty())
        records.header(header);
    for (const std::vector<std::string> &row : rows) {
        out.row(row);
        if (!records.empty())
            records.row(row);
    }
    out.finish();
    records.finish();
    std::printf("(a Markov table needs ~'distinct pages' rows; DP "
                "needs ~'distinct distances' — the gap is the paper's "
                "space argument)\n");
    return 0;
}
