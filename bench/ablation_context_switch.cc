/**
 * @file
 * Extension bench: multiprogrammed environment (the paper's "ongoing
 * work": "prefetching issues in a multiprogrammed environment
 * (flushing/switching the prefetch tables)").
 *
 * Every N references a context switch flushes the TLB, the prefetch
 * buffer and the prefetcher's on-chip state; the bench sweeps N and
 * reports DP and RP accuracy.  The question is how fast each
 * mechanism re-learns: DP only needs to re-observe its handful of hot
 * distances, while RP/MP must rebuild per-page history.
 *
 * The scheme × app × interval grid runs as one SweepEngine batch.
 *
 * A --workload list substitutes any spec for the default app set —
 * in particular a mix: spec interleaves several address spaces at the
 * mix quantum while the bench's contextSwitchInterval flushes the
 * hardware state, exercising multiprogramming end to end.
 *
 * Usage: ablation_context_switch [--refs N] [--threads N] [--shards N]
 *                                [--csv out.csv] [--json out.json]
 *                                [--workload spec,...] [--mech spec,...]
 *                                [--list-mechanisms]
 */

#include <cstdio>

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace tlbpf;
    using namespace tlbpf::bench;

    BenchOptions options = parseBenchOptions(argc, argv);

    const std::uint64_t intervals[] = {0, 500000, 100000, 20000};
    std::vector<MechanismSpec> mechs = selectedMechanisms(
        options,
        std::vector<std::string>{"DP,256,D", "RP", "MP,256,D"});
    std::vector<WorkloadSpec> workloads =
        selectedWorkloads(options, highMissRateApps());

    std::printf("=== Extension: context-switch flushing (refs/app = "
                "%llu) ===\n",
                static_cast<unsigned long long>(options.refs));

    // One batch over the full grid, mechanism-major then workload then
    // interval, mirroring the rendering order below.
    std::vector<SweepJob> jobs;
    for (const MechanismSpec &spec : mechs) {
        for (const WorkloadSpec &workload : workloads) {
            for (std::uint64_t interval : intervals) {
                SimConfig config;
                config.contextSwitchInterval = interval;
                jobs.push_back(SweepJob::functional(workload, spec,
                                                    options.refs,
                                                    config));
            }
        }
    }
    std::vector<SweepResult> results = runBatch(options, jobs);

    MultiSink records = recordSinks(options);
    if (!records.empty())
        records.header({"scheme", "workload", "interval",
                        "accuracy"});

    std::vector<std::string> names = mechanismColumnLabels(mechs);
    std::size_t cell = 0;
    for (std::size_t m = 0; m < mechs.size(); ++m) {
        TableSink out("--- " + names[m] +
                      " accuracy vs context-switch interval ---");
        out.header({"workload", "no switch", "every 500k",
                    "every 100k", "every 20k"});
        for (const WorkloadSpec &workload : workloads) {
            std::vector<std::string> row = {workload.label()};
            for (std::uint64_t interval : intervals) {
                const SweepResult &r = results[cell++];
                row.push_back(TablePrinter::num(r.accuracy(), 3));
                if (!records.empty())
                    records.row({names[m], r.workload,
                                 TablePrinter::num(interval),
                                 TablePrinter::num(r.accuracy(), 6)});
            }
            out.row(row);
        }
        out.finish();
    }
    records.finish();
    return 0;
}
