/**
 * @file
 * Extension bench: multiprogrammed environment (the paper's "ongoing
 * work": "prefetching issues in a multiprogrammed environment
 * (flushing/switching the prefetch tables)").
 *
 * Every N references a context switch flushes the TLB, the prefetch
 * buffer and the prefetcher's on-chip state; the bench sweeps N and
 * reports DP and RP accuracy.  The question is how fast each
 * mechanism re-learns: DP only needs to re-observe its handful of hot
 * distances, while RP/MP must rebuild per-page history.
 *
 * Usage: ablation_context_switch [--refs N]
 */

#include <cstdio>

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace tlbpf;
    using namespace tlbpf::bench;

    BenchOptions options = parseBenchOptions(argc, argv);

    const std::uint64_t intervals[] = {0, 500000, 100000, 20000};

    std::printf("=== Extension: context-switch flushing (refs/app = "
                "%llu) ===\n",
                static_cast<unsigned long long>(options.refs));

    for (Scheme scheme : {Scheme::DP, Scheme::RP, Scheme::MP}) {
        PrefetcherSpec spec;
        spec.scheme = scheme;
        spec.table = TableConfig{256, TableAssoc::Direct};
        spec.slots = 2;

        TablePrinter out({"app", "no switch", "every 500k",
                          "every 100k", "every 20k"});
        out.caption("--- " + schemeName(scheme) +
                    " accuracy vs context-switch interval ---");
        for (const std::string &app : highMissRateApps()) {
            std::vector<std::string> row = {app};
            for (std::uint64_t interval : intervals) {
                SimConfig config;
                config.contextSwitchInterval = interval;
                SimResult r = runFunctional(app, spec, options.refs,
                                            config);
                row.push_back(TablePrinter::num(r.accuracy(), 3));
            }
            out.addRow(std::move(row));
            std::fflush(stdout);
        }
        out.print();
    }
    return 0;
}
