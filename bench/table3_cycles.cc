/**
 * @file
 * Regenerates paper Table 3: normalised execution cycles (with respect
 * to no prefetching) for RP and DP on the five high-miss-rate
 * applications where RP's prediction accuracy exceeds DP's — the
 * experiment showing that RP's memory traffic erodes its accuracy
 * advantage.
 *
 * Cycle model per Section 3.2: 100-cycle constant TLB miss penalty,
 * 50-cycle prefetch/state memory operations on a channel that contends
 * only with prefetch traffic, and RP's benefit-of-the-doubt rule.
 *
 * Paper reference: ammp 0.97/0.86, mcf 1.09/0.95, vpr 0.99/0.98,
 * twolf 0.98/0.98, lucas 1.00/0.99 (RP/DP).
 *
 * The 5 apps × 3 mechanisms (baseline, RP, DP) timing cells run as
 * one SweepEngine batch on --threads workers.
 *
 * Usage: table3_cycles [--refs N] [--threads N] [--csv out.csv]
 *                      [--json out.json] [--workload spec,...]
 *                      [--mech spec,...] [--list-mechanisms]
 *                      (--mech replaces the RP/DP comparison columns;
 *                      the no-prefetch baseline always runs)
 */

#include <cctype>
#include <cstdio>

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace tlbpf;
    using namespace tlbpf::bench;

    BenchOptions options = parseBenchOptions(argc, argv);

    // The comparison columns (paper: RP vs DP); the no-prefetch
    // baseline always runs to normalise against.
    MechanismSpec none = MechanismSpec::none();
    std::vector<MechanismSpec> mechs =
        selectedMechanisms(options,
                           std::vector<std::string>{"RP", "DP,256,D"});
    std::size_t cols = mechs.size();

    std::printf("=== Table 3: normalised execution cycles, RP vs DP "
                "(s=2, r=256, refs/app = %llu) ===\n",
                static_cast<unsigned long long>(options.refs));

    // Per workload, in slot order: baseline then one cell per --mech.
    std::vector<WorkloadSpec> workloads =
        selectedWorkloads(options, table3Apps());
    if (options.shards > 1)
        tlbpf_fatal("table3_cycles runs timing cells; sharding "
                    "supports functional cells only");
    for (const WorkloadSpec &workload : workloads)
        if (workload.sharded())
            tlbpf_fatal("table3_cycles runs timing cells; sharded "
                        "workload '", workload.label(),
                        "' is not supported");
    std::vector<SweepJob> jobs;
    jobs.reserve(workloads.size() * (cols + 1));
    for (const WorkloadSpec &workload : workloads) {
        jobs.push_back(SweepJob::timed(workload, none, options.refs));
        for (const MechanismSpec &spec : mechs)
            jobs.push_back(SweepJob::timed(workload, spec,
                                           options.refs));
    }
    std::vector<SweepResult> results = runBatch(options, jobs);

    auto lower = [](std::string s) {
        for (char &c : s)
            c = static_cast<char>(
                std::tolower(static_cast<unsigned char>(c)));
        return s;
    };
    std::vector<std::string> names = mechanismColumnLabels(mechs);
    std::vector<std::string> header = {"workload"};
    std::vector<std::string> record_header = {"workload"};
    for (const char *suffix : {"", " acc", " memops"})
        for (const std::string &name : names) {
            header.push_back(name + suffix);
            record_header.push_back(
                lower(name) +
                (suffix[0] == '\0'
                     ? "_norm"
                     : suffix[1] == 'a' ? "_acc" : "_memops"));
        }
    TableSink out;
    out.header(header);
    MultiSink records = recordSinks(options);
    if (!records.empty())
        records.header(record_header);

    std::size_t stride = cols + 1;
    for (std::size_t a = 0; a < workloads.size(); ++a) {
        const TimingResult &base = results[a * stride].timed;
        std::vector<double> norm(cols);
        for (std::size_t c = 0; c < cols; ++c)
            norm[c] =
                static_cast<double>(
                    results[a * stride + 1 + c].timed.cycles) /
                static_cast<double>(base.cycles);
        auto timed_of = [&](std::size_t c) -> const TimingResult & {
            return results[a * stride + 1 + c].timed;
        };
        std::vector<std::string> row = {workloads[a].label()};
        std::vector<std::string> record = {workloads[a].label()};
        for (std::size_t c = 0; c < cols; ++c) {
            row.push_back(TablePrinter::num(norm[c], 2));
            record.push_back(TablePrinter::num(norm[c], 6));
        }
        for (std::size_t c = 0; c < cols; ++c) {
            row.push_back(
                TablePrinter::num(timed_of(c).functional.accuracy(),
                                  3));
            record.push_back(
                TablePrinter::num(timed_of(c).functional.accuracy(),
                                  6));
        }
        for (std::size_t c = 0; c < cols; ++c) {
            row.push_back(TablePrinter::num(timed_of(c).memoryOps));
            record.push_back(TablePrinter::num(timed_of(c).memoryOps));
        }
        out.row(row);
        if (!records.empty())
            records.row(record);
    }
    out.finish();
    records.finish();
    std::printf("(paper: ammp .97/.86  mcf 1.09/.95  vpr .99/.98  "
                "twolf .98/.98  lucas 1.00/.99)\n");
    return 0;
}
