/**
 * @file
 * Regenerates paper Table 3: normalised execution cycles (with respect
 * to no prefetching) for RP and DP on the five high-miss-rate
 * applications where RP's prediction accuracy exceeds DP's — the
 * experiment showing that RP's memory traffic erodes its accuracy
 * advantage.
 *
 * Cycle model per Section 3.2: 100-cycle constant TLB miss penalty,
 * 50-cycle prefetch/state memory operations on a channel that contends
 * only with prefetch traffic, and RP's benefit-of-the-doubt rule.
 *
 * Paper reference: ammp 0.97/0.86, mcf 1.09/0.95, vpr 0.99/0.98,
 * twolf 0.98/0.98, lucas 1.00/0.99 (RP/DP).
 *
 * The 5 apps × 3 mechanisms (baseline, RP, DP) timing cells run as
 * one SweepEngine batch on --threads workers.
 *
 * Usage: table3_cycles [--refs N] [--threads N] [--csv out.csv]
 *                      [--json out.json] [--workload spec,...]
 */

#include <cstdio>

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace tlbpf;
    using namespace tlbpf::bench;

    BenchOptions options = parseBenchOptions(argc, argv);

    PrefetcherSpec none;
    none.scheme = Scheme::None;
    PrefetcherSpec rp;
    rp.scheme = Scheme::RP;
    PrefetcherSpec dp;
    dp.scheme = Scheme::DP;
    dp.table = TableConfig{256, TableAssoc::Direct};
    dp.slots = 2;

    std::printf("=== Table 3: normalised execution cycles, RP vs DP "
                "(s=2, r=256, refs/app = %llu) ===\n",
                static_cast<unsigned long long>(options.refs));

    // Per workload, in slot order: baseline / RP / DP timing cells.
    std::vector<WorkloadSpec> workloads =
        selectedWorkloads(options, table3Apps());
    if (options.shards > 1)
        tlbpf_fatal("table3_cycles runs timing cells; sharding "
                    "supports functional cells only");
    for (const WorkloadSpec &workload : workloads)
        if (workload.sharded())
            tlbpf_fatal("table3_cycles runs timing cells; sharded "
                        "workload '", workload.label(),
                        "' is not supported");
    std::vector<SweepJob> jobs;
    jobs.reserve(workloads.size() * 3);
    for (const WorkloadSpec &workload : workloads)
        for (const PrefetcherSpec &spec : {none, rp, dp})
            jobs.push_back(SweepJob::timed(workload, spec,
                                           options.refs));
    std::vector<SweepResult> results = runBatch(options, jobs);

    TableSink out;
    out.header({"workload", "RP", "DP", "RP acc", "DP acc",
                "RP memops", "DP memops"});
    MultiSink records = recordSinks(options);
    if (!records.empty())
        records.header({"workload", "rp_norm", "dp_norm", "rp_acc",
                        "dp_acc", "rp_memops", "dp_memops"});

    for (std::size_t a = 0; a < workloads.size(); ++a) {
        const TimingResult &base = results[a * 3 + 0].timed;
        const TimingResult &with_rp = results[a * 3 + 1].timed;
        const TimingResult &with_dp = results[a * 3 + 2].timed;
        double rp_norm = static_cast<double>(with_rp.cycles) /
                         static_cast<double>(base.cycles);
        double dp_norm = static_cast<double>(with_dp.cycles) /
                         static_cast<double>(base.cycles);
        out.row({workloads[a].label(),
                 TablePrinter::num(rp_norm, 2),
                 TablePrinter::num(dp_norm, 2),
                 TablePrinter::num(with_rp.functional.accuracy(), 3),
                 TablePrinter::num(with_dp.functional.accuracy(), 3),
                 TablePrinter::num(with_rp.memoryOps),
                 TablePrinter::num(with_dp.memoryOps)});
        if (!records.empty())
            records.row({workloads[a].label(),
                         TablePrinter::num(rp_norm, 6),
                         TablePrinter::num(dp_norm, 6),
                         TablePrinter::num(
                             with_rp.functional.accuracy(), 6),
                         TablePrinter::num(
                             with_dp.functional.accuracy(), 6),
                         TablePrinter::num(with_rp.memoryOps),
                         TablePrinter::num(with_dp.memoryOps)});
    }
    out.finish();
    records.finish();
    std::printf("(paper: ammp .97/.86  mcf 1.09/.95  vpr .99/.98  "
                "twolf .98/.98  lucas 1.00/.99)\n");
    return 0;
}
