/**
 * @file
 * Regenerates paper Table 3: normalised execution cycles (with respect
 * to no prefetching) for RP and DP on the five high-miss-rate
 * applications where RP's prediction accuracy exceeds DP's — the
 * experiment showing that RP's memory traffic erodes its accuracy
 * advantage.
 *
 * Cycle model per Section 3.2: 100-cycle constant TLB miss penalty,
 * 50-cycle prefetch/state memory operations on a channel that contends
 * only with prefetch traffic, and RP's benefit-of-the-doubt rule.
 *
 * Paper reference: ammp 0.97/0.86, mcf 1.09/0.95, vpr 0.99/0.98,
 * twolf 0.98/0.98, lucas 1.00/0.99 (RP/DP).
 *
 * The 5 apps × 3 mechanisms (baseline, RP, DP) timing cells run as
 * one SweepEngine batch on --threads workers.
 *
 * Usage: table3_cycles [--refs N] [--threads N] [--csv out.csv]
 *                      [--json out.json]
 */

#include <cstdio>

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace tlbpf;
    using namespace tlbpf::bench;

    BenchOptions options = parseBenchOptions(argc, argv);

    PrefetcherSpec none;
    none.scheme = Scheme::None;
    PrefetcherSpec rp;
    rp.scheme = Scheme::RP;
    PrefetcherSpec dp;
    dp.scheme = Scheme::DP;
    dp.table = TableConfig{256, TableAssoc::Direct};
    dp.slots = 2;

    std::printf("=== Table 3: normalised execution cycles, RP vs DP "
                "(s=2, r=256, refs/app = %llu) ===\n",
                static_cast<unsigned long long>(options.refs));

    // Per app, in slot order: baseline / RP / DP timing cells.
    const std::vector<std::string> &apps = table3Apps();
    std::vector<SweepJob> jobs;
    jobs.reserve(apps.size() * 3);
    for (const std::string &app : apps)
        for (const PrefetcherSpec &spec : {none, rp, dp})
            jobs.push_back(SweepJob::timed(app, spec, options.refs));
    std::vector<SweepResult> results = runBatch(options, jobs);

    TableSink out;
    out.header({"app", "RP", "DP", "RP acc", "DP acc", "RP memops",
                "DP memops"});
    MultiSink records = recordSinks(options);
    if (!records.empty())
        records.header({"app", "rp_norm", "dp_norm", "rp_acc",
                        "dp_acc", "rp_memops", "dp_memops"});

    for (std::size_t a = 0; a < apps.size(); ++a) {
        const TimingResult &base = results[a * 3 + 0].timed;
        const TimingResult &with_rp = results[a * 3 + 1].timed;
        const TimingResult &with_dp = results[a * 3 + 2].timed;
        double rp_norm = static_cast<double>(with_rp.cycles) /
                         static_cast<double>(base.cycles);
        double dp_norm = static_cast<double>(with_dp.cycles) /
                         static_cast<double>(base.cycles);
        out.row({apps[a], TablePrinter::num(rp_norm, 2),
                 TablePrinter::num(dp_norm, 2),
                 TablePrinter::num(with_rp.functional.accuracy(), 3),
                 TablePrinter::num(with_dp.functional.accuracy(), 3),
                 TablePrinter::num(with_rp.memoryOps),
                 TablePrinter::num(with_dp.memoryOps)});
        if (!records.empty())
            records.row({apps[a], TablePrinter::num(rp_norm, 6),
                         TablePrinter::num(dp_norm, 6),
                         TablePrinter::num(
                             with_rp.functional.accuracy(), 6),
                         TablePrinter::num(
                             with_dp.functional.accuracy(), 6),
                         TablePrinter::num(with_rp.memoryOps),
                         TablePrinter::num(with_dp.memoryOps)});
    }
    out.finish();
    records.finish();
    std::printf("(paper: ammp .97/.86  mcf 1.09/.95  vpr .99/.98  "
                "twolf .98/.98  lucas 1.00/.99)\n");
    return 0;
}
