/**
 * @file
 * Fuzz target: the WorkloadSpec / MechanismSpec string grammars.
 *
 * Attack surface: both spec parsers consume strings straight off the
 * service protocol (sweep request arrays) and the CLI.  Beyond
 * crash-freedom the harness checks the round-trip laws the cache
 * keying depends on:
 *
 *   WorkloadSpec:  parse(label(parse(s))) has the same label
 *   MechanismSpec: parse(canonical(parse(s))) has the same canonical
 *                  form, and parse(label(parse(s))) the same too
 *                  (labels never lose information — PR 4's contract)
 *
 * A spec that parses but breaks a round-trip would give one
 * experiment two cache identities (or two experiments one), so the
 * harness aborts on it like any crash.
 */

#include "harness.hh"

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

#include "prefetch/mech_spec.hh"
#include "workload/workload_spec.hh"

namespace
{

[[noreturn]] void
roundTripFailure(const char *what, const std::string &input,
                 const std::string &first, const std::string &second)
{
    std::fprintf(stderr,
                 "%s round-trip violated for input '%s': "
                 "'%s' re-parsed as '%s'\n",
                 what, input.c_str(), first.c_str(), second.c_str());
    std::abort();
}

void
checkWorkload(const std::string &text)
{
    tlbpf::WorkloadSpec spec = tlbpf::WorkloadSpec::parse(text);
    std::string label = spec.label();
    tlbpf::WorkloadSpec again = tlbpf::WorkloadSpec::parse(label);
    if (again.label() != label)
        roundTripFailure("WorkloadSpec label", text, label,
                         again.label());
}

void
checkMechanism(const std::string &text)
{
    tlbpf::MechanismSpec spec = tlbpf::MechanismSpec::parse(text);
    std::string canonical = spec.canonical();
    tlbpf::MechanismSpec again = tlbpf::MechanismSpec::parse(canonical);
    if (again.canonical() != canonical)
        roundTripFailure("MechanismSpec canonical", text, canonical,
                         again.canonical());
    std::string label = spec.label();
    tlbpf::MechanismSpec legend = tlbpf::MechanismSpec::parse(label);
    if (legend.canonical() != canonical)
        roundTripFailure("MechanismSpec label", text, label,
                         legend.canonical());
}

} // namespace

extern "C" int
LLVMFuzzerTestOneInput(const std::uint8_t *data, std::size_t size)
{
    std::string text(reinterpret_cast<const char *>(data), size);
    try {
        checkWorkload(text);
    } catch (const std::invalid_argument &) {
        // Rejected spec strings are the expected common case.
    }
    try {
        checkMechanism(text);
    } catch (const std::invalid_argument &) {
    }
    return 0;
}
