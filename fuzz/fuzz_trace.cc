/**
 * @file
 * Fuzz target: the binary .tpf trace decoder.
 *
 * Attack surface: TraceReader decodes untrusted files named by
 * `trace:` workload specs — header fields, varint deltas, record
 * framing.  The harness materializes the input as a file (the reader
 * API is path-based by design), drains it through the same
 * nextBatch() path the simulator uses, and resets mid-stream the way
 * shard warm-up does.  ErrorPolicy::Throw turns every malformation
 * into std::invalid_argument; a crash or unbounded loop is a bug.
 */

#include "harness.hh"

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <unistd.h>

#include "trace/trace_file.hh"

namespace
{

/** One scratch path per process, rewritten every input. */
const std::string &
scratchPath()
{
    static const std::string path = [] {
        const char *dir = std::getenv("TMPDIR");
        return std::string(dir && *dir ? dir : "/tmp") +
               "/tlbpf_fuzz_trace." + std::to_string(::getpid()) +
               ".tpf";
    }();
    return path;
}

} // namespace

extern "C" int
LLVMFuzzerTestOneInput(const std::uint8_t *data, std::size_t size)
{
    const std::string &path = scratchPath();
    std::FILE *file = std::fopen(path.c_str(), "wb");
    if (!file)
        return 0;
    if (size > 0 && std::fwrite(data, 1, size, file) != size) {
        std::fclose(file);
        return 0;
    }
    std::fclose(file);

    // The cheap validity probe must agree with the reader: a file the
    // probe passes must construct, and one it rejects must throw.
    std::string probe = tlbpf::probeTraceFile(path);
    try {
        tlbpf::TraceReader reader(
            path, tlbpf::TraceReader::ErrorPolicy::Throw);
        if (!probe.empty()) {
            std::fprintf(stderr,
                         "probe rejected ('%s') what TraceReader "
                         "accepted\n",
                         probe.c_str());
            std::abort();
        }
        tlbpf::MemRef block[64];
        std::size_t drained = 0;
        while (std::size_t got = reader.nextBatch(block, 64)) {
            drained += got;
            if (drained > (1u << 22))
                break; // plenty; keep the per-input budget bounded
        }
        // Shard warm-up resets positioned streams; decode again after
        // a reset to cover the buffered-reader rewind path.
        reader.reset();
        (void)reader.nextBatch(block, 64);
    } catch (const std::invalid_argument &) {
        // Malformed traces are the expected rejection.
    }
    return 0;
}
