#!/usr/bin/env python3
"""Regenerate the committed seed corpora under fuzz/corpus/.

The seeds are valid (or near-valid) inputs for each harness so that
mutation starts from deep in each parser's grammar instead of from
random bytes.  Run from the repo root.
"""

import json
import os
import shutil
import struct

BASE = "fuzz/corpus"

COUNTERS = {
    "refs": 1000, "misses": 40, "pb_hits": 12, "demand_fetches": 28,
    "prefetches_issued": 30, "prefetches_suppressed": 2,
    "state_ops": 60, "pb_evicted_unused": 5, "footprint_pages": 128,
    "context_switches": 0,
}
CONFIG = {
    "tlb_entries": 64, "tlb_assoc": 4, "pb_entries": 16,
    "page_bytes": 4096, "train_on_all_refs": False,
    "context_switch_interval": 0,
}
SWEEP = {
    "type": "sweep", "workloads": ["mcf", "mix:mcf+gcc@1k"],
    "mechanisms": ["dp", "hybrid(dp+sp)"], "refs": 5000,
    "mode": "functional", "shards": 2, "shard_warmup": "replay",
    "pass_mode": "multi", "config": CONFIG,
}

JSON_SEEDS = {
    "sweep": SWEEP,
    "nested": {"a": [1, [2, [3, [4, {"b": [None, True, False]}]]]],
               "c": {"d": {"e": {"f": "g"}}}},
    "numbers": [0, -1, 18446744073709551615, 1.5, -2.25e-3, 1e308,
                123456789012345678901234567890],
    "strings": ["", "plain", "esc \" \\ / \b \f \n \r \t",
                "unicode é € \U0001f600"],
    "scalars": True,
}

SPEC_SEEDS = {
    "app": "mcf",
    "app_prefixed": "app:mcf",
    "trace": "trace:path/to/run.tpf",
    "mix": "mix:mcf+gcc@100k",
    "mix_trace": "mix:mcf+trace:x.tpf@5000",
    "shard": "mcf#2/8",
    "dp_params": "dp(rows=256,assoc=dm,slots=2)",
    "mp_params": "mp(rows=1024,assoc=2w)",
    "asp": "asp(assoc=fa)",
    "sp_degree": "sp(degree=3)",
    "asq": "sp(adaptive)",
    "rp": "rp(reach=2)",
    "hybrid": "hybrid(dp+sp)",
    "label_dp": "DP,256,D",
    "alias": "markov",
}


def frame(*docs):
    out = b""
    for doc in docs:
        payload = json.dumps(doc).encode()
        out += struct.pack("<I", len(payload)) + payload
    return out


FRAME_SEEDS = {
    "ping": frame({"type": "ping"}),
    "sweep": frame(SWEEP),
    "stats_then_shutdown": frame({"type": "stats"},
                                 {"type": "shutdown"}),
    "worker_hello": frame({"type": "worker_hello", "protocol": 1,
                           "threads": 2}),
    "worker_welcome": frame({"type": "worker_welcome", "worker": 7,
                             "heartbeat_ms": 500}),
    "lease": frame({"type": "lease", "worker": 7}),
    "heartbeat": frame({"type": "heartbeat", "worker": 7}),
    "lease_grant": frame({"type": "lease_grant", "lease": 3,
                          "chain": False,
                          "jobs": [{"workload": "mcf",
                                    "mechanism": "DP,256,D",
                                    "refs": 1000,
                                    "config": CONFIG}]}),
    "cell_result": frame({"type": "cell_result", "lease": 3,
                          "results": [{"workload": "mcf",
                                       "mechanism": "DP,256,D",
                                       "counters": COUNTERS}]}),
    "result_ok": frame({"type": "result_ok", "accepted": True}),
    "cell_reply": frame({"type": "cell", "index": 0,
                         "workload": "mcf", "mechanism": "DP,256,D",
                         "mode": "functional", "cached": False,
                         "counters": COUNTERS}),
    "done": frame({"type": "done", "cells": 4, "cache_hits": 1,
                   "simulated": 3}),
    "truncated": frame({"type": "ping"})[:6],
    # kMaxFrameBytes is an inclusive limit; the first rejected
    # length is one past it.
    "oversize_prefix": struct.pack("<I", 0x04000001) + b"x" * 16,
}


def main():
    for sub in ("json", "spec", "trace", "frame"):
        os.makedirs(os.path.join(BASE, sub), exist_ok=True)

    for name, doc in JSON_SEEDS.items():
        with open(f"{BASE}/json/{name}.json", "w") as f:
            f.write(json.dumps(doc))
    with open(f"{BASE}/json/null.json", "w") as f:
        f.write("null")

    for name, text in SPEC_SEEDS.items():
        with open(f"{BASE}/spec/{name}.txt", "w") as f:
            f.write(text)

    shutil.copyfile("tests/data/sample.tpf",
                    f"{BASE}/trace/sample.tpf")
    with open("tests/data/sample.tpf", "rb") as f:
        sample = f.read()
    with open(f"{BASE}/trace/truncated.tpf", "wb") as f:
        f.write(sample[:64])
    with open(f"{BASE}/trace/magic_only.tpf", "wb") as f:
        f.write(b"TPFT")
    with open(f"{BASE}/trace/empty.tpf", "wb") as f:
        f.write(b"")

    for name, blob in FRAME_SEEDS.items():
        with open(f"{BASE}/frame/{name}.bin", "wb") as f:
            f.write(blob)

    for sub in ("json", "spec", "trace", "frame"):
        files = sorted(os.listdir(f"{BASE}/{sub}"))
        print(f"{sub}: {len(files)} seeds: {files}")


if __name__ == "__main__":
    main()
