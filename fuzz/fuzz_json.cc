/**
 * @file
 * Fuzz target: the service protocol's strict JSON parser.
 *
 * Attack surface: JsonValue::parse() consumes every byte a network
 * peer puts in a frame.  The harness parses, then walks the whole
 * tree through the typed accessors (including the exact-u64 re-parse
 * of number text), so a malformed value that *parsed* but violates an
 * accessor invariant is exercised too.  std::invalid_argument is the
 * documented rejection; any crash, hang, or other exception is a bug.
 */

#include "harness.hh"

#include <stdexcept>
#include <string>

#include "service/json.hh"

namespace
{

void
walk(const tlbpf::JsonValue &value, int depth)
{
    using tlbpf::JsonValue;
    if (depth > 80)
        return;
    switch (value.kind()) {
      case JsonValue::Kind::Bool:
        (void)value.asBool();
        break;
      case JsonValue::Kind::Number:
        (void)value.asDouble();
        try {
            (void)value.asU64(); // throws on sign/fraction/overflow
        } catch (const std::invalid_argument &) {
        }
        break;
      case JsonValue::Kind::String:
        (void)value.asString();
        break;
      case JsonValue::Kind::Array:
        for (const JsonValue &item : value.asArray())
            walk(item, depth + 1);
        break;
      case JsonValue::Kind::Object:
        for (const std::string &key : value.keys()) {
            (void)value.find(key);
            walk(value.at(key), depth + 1);
        }
        break;
      case JsonValue::Kind::Null:
        break;
    }
}

} // namespace

extern "C" int
LLVMFuzzerTestOneInput(const std::uint8_t *data, std::size_t size)
{
    std::string text(reinterpret_cast<const char *>(data), size);
    try {
        tlbpf::JsonValue value = tlbpf::JsonValue::parse(text);
        walk(value, 0);
    } catch (const std::invalid_argument &) {
        // The strict parser's documented rejection path.
    }
    return 0;
}
