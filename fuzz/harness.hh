/**
 * @file
 * Shared declaration for the fuzz harnesses.
 *
 * Every harness defines the standard libFuzzer entry point; how it
 * gets driven depends on the toolchain the build found:
 *
 *  - clang with libFuzzer: the harness links -fsanitize=fuzzer and
 *    the runtime's own main() does coverage-guided mutation (the CI
 *    fuzz job's bounded smoke).
 *  - any other compiler (the dev container bakes in gcc only): the
 *    harness links driver_main.cc, which replays corpus files and
 *    optionally runs a deterministic mutation loop — weaker than
 *    libFuzzer but enough to shake out parser crashes locally under
 *    ASan/UBSan, and exactly reproducible from its seed.
 *
 * A harness must return 0, must not leak, and must treat
 * std::invalid_argument as the *expected* rejection path — anything
 * else reaching the top is a finding.
 */

#ifndef TLBPF_FUZZ_HARNESS_HH
#define TLBPF_FUZZ_HARNESS_HH

#include <cstddef>
#include <cstdint>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t *data,
                                      std::size_t size);

#endif // TLBPF_FUZZ_HARNESS_HH
