/**
 * @file
 * Standalone driver for toolchains without libFuzzer (gcc).
 *
 * Replays corpus files through LLVMFuzzerTestOneInput, and with
 * --mutate runs a deterministic mutation loop over the corpus: a
 * seeded xorshift PRNG picks a base entry and applies bit flips, byte
 * writes, inserts, erases, duplications, truncations and two-entry
 * splices — the classic dumb-fuzzer moves.  No coverage feedback, so
 * it is strictly weaker than libFuzzer, but it runs under plain
 * gcc + ASan/UBSan, it is exactly reproducible from (--seed, corpus),
 * and before every execution the candidate input is persisted to the
 * artifact path — so when the harness aborts, the crashing input is
 * sitting on disk ready to be committed as a regression entry.
 *
 * Usage:
 *   fuzz_x CORPUS...                      replay (regression mode)
 *   fuzz_x --mutate N [--seed S] [--max-len L]
 *          [--artifact PATH] CORPUS...    N mutated executions
 *
 * CORPUS arguments are files or directories (one level, no
 * recursion).  Exit code 0 = every execution returned; a crash kills
 * the process through the harness's own abort.
 */

#include "harness.hh"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <dirent.h>
#include <string>
#include <sys/stat.h>
#include <vector>

namespace
{

using Bytes = std::vector<std::uint8_t>;

std::uint64_t
xorshift(std::uint64_t &state)
{
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
}

bool
readFile(const std::string &path, Bytes &out)
{
    std::FILE *file = std::fopen(path.c_str(), "rb");
    if (!file)
        return false;
    out.clear();
    std::uint8_t buf[4096];
    std::size_t got;
    while ((got = std::fread(buf, 1, sizeof(buf), file)) > 0)
        out.insert(out.end(), buf, buf + got);
    std::fclose(file);
    return true;
}

void
collectCorpus(const std::string &path, std::vector<Bytes> &corpus,
              std::vector<std::string> &names)
{
    struct stat st;
    if (::stat(path.c_str(), &st) != 0) {
        std::fprintf(stderr, "fuzz driver: cannot stat '%s'\n",
                     path.c_str());
        std::exit(2);
    }
    if (!S_ISDIR(st.st_mode)) {
        Bytes bytes;
        if (readFile(path, bytes)) {
            corpus.push_back(std::move(bytes));
            names.push_back(path);
        }
        return;
    }
    DIR *dir = ::opendir(path.c_str());
    if (!dir)
        return;
    std::vector<std::string> entries;
    while (const dirent *entry = ::readdir(dir)) {
        if (entry->d_name[0] == '.')
            continue;
        entries.push_back(path + "/" + entry->d_name);
    }
    ::closedir(dir);
    // Deterministic order regardless of directory hash order.
    std::sort(entries.begin(), entries.end());
    for (const std::string &entry : entries) {
        if (::stat(entry.c_str(), &st) == 0 && !S_ISDIR(st.st_mode)) {
            Bytes bytes;
            if (readFile(entry, bytes)) {
                corpus.push_back(std::move(bytes));
                names.push_back(entry);
            }
        }
    }
}

void
persistArtifact(const std::string &path, const Bytes &input)
{
    std::FILE *file = std::fopen(path.c_str(), "wb");
    if (!file)
        return;
    if (!input.empty())
        (void)std::fwrite(input.data(), 1, input.size(), file);
    std::fclose(file);
}

Bytes
mutate(const std::vector<Bytes> &corpus, std::uint64_t &rng,
       std::size_t max_len)
{
    Bytes out = corpus[xorshift(rng) % corpus.size()];
    std::size_t rounds = 1 + xorshift(rng) % 8;
    for (std::size_t r = 0; r < rounds; ++r) {
        switch (xorshift(rng) % 7) {
          case 0: // flip one bit
            if (!out.empty())
                out[xorshift(rng) % out.size()] ^=
                    static_cast<std::uint8_t>(1u << (xorshift(rng) % 8));
            break;
          case 1: // overwrite one byte
            if (!out.empty())
                out[xorshift(rng) % out.size()] =
                    static_cast<std::uint8_t>(xorshift(rng));
            break;
          case 2: // insert one byte
            out.insert(out.begin() +
                           static_cast<std::ptrdiff_t>(
                               out.empty() ? 0
                                           : xorshift(rng) %
                                                 (out.size() + 1)),
                       static_cast<std::uint8_t>(xorshift(rng)));
            break;
          case 3: // erase one byte
            if (!out.empty())
                out.erase(out.begin() +
                          static_cast<std::ptrdiff_t>(xorshift(rng) %
                                                      out.size()));
            break;
          case 4: { // duplicate a short span
            if (out.empty())
                break;
            std::size_t at = xorshift(rng) % out.size();
            std::size_t len = std::min<std::size_t>(
                1 + xorshift(rng) % 16, out.size() - at);
            Bytes span(out.begin() +
                           static_cast<std::ptrdiff_t>(at),
                       out.begin() +
                           static_cast<std::ptrdiff_t>(at + len));
            out.insert(out.begin() +
                           static_cast<std::ptrdiff_t>(at),
                       span.begin(), span.end());
            break;
          }
          case 5: // truncate
            if (!out.empty())
                out.resize(xorshift(rng) % out.size());
            break;
          case 6: { // splice: head of this, tail of another entry
            const Bytes &other =
                corpus[xorshift(rng) % corpus.size()];
            if (other.empty())
                break;
            std::size_t head =
                out.empty() ? 0 : xorshift(rng) % out.size();
            std::size_t tail = xorshift(rng) % other.size();
            out.resize(head);
            out.insert(out.end(),
                       other.begin() +
                           static_cast<std::ptrdiff_t>(tail),
                       other.end());
            break;
          }
        }
    }
    if (out.size() > max_len)
        out.resize(max_len);
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    std::uint64_t iterations = 0;
    std::uint64_t seed = 1;
    std::size_t max_len = 4096;
    std::string artifact = "fuzz_cur_input";
    std::vector<std::string> paths;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto value = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "fuzz driver: %s needs a value\n",
                             arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--mutate")
            iterations = std::strtoull(value(), nullptr, 10);
        else if (arg == "--seed")
            seed = std::strtoull(value(), nullptr, 10);
        else if (arg == "--max-len")
            max_len = std::strtoull(value(), nullptr, 10);
        else if (arg == "--artifact")
            artifact = value();
        else
            paths.push_back(arg);
    }
    if (paths.empty()) {
        std::fprintf(stderr,
                     "usage: %s [--mutate N] [--seed S] [--max-len L] "
                     "[--artifact PATH] CORPUS...\n",
                     argv[0]);
        return 2;
    }

    std::vector<Bytes> corpus;
    std::vector<std::string> names;
    for (const std::string &path : paths)
        collectCorpus(path, corpus, names);
    if (corpus.empty()) {
        std::fprintf(stderr, "fuzz driver: empty corpus\n");
        return 2;
    }

    // Replay first: the committed corpus (seeds + past crashes) must
    // pass before mutation starts — this is the regression gate.
    for (std::size_t i = 0; i < corpus.size(); ++i) {
        persistArtifact(artifact, corpus[i]);
        (void)LLVMFuzzerTestOneInput(
            corpus[i].empty() ? nullptr : corpus[i].data(),
            corpus[i].size());
    }
    std::fprintf(stderr, "fuzz driver: replayed %zu corpus entries\n",
                 corpus.size());

    std::uint64_t rng = seed ? seed : 1;
    for (std::uint64_t i = 0; i < iterations; ++i) {
        Bytes input = mutate(corpus, rng, max_len);
        persistArtifact(artifact, input);
        (void)LLVMFuzzerTestOneInput(
            input.empty() ? nullptr : input.data(), input.size());
        if ((i + 1) % 100000 == 0)
            std::fprintf(stderr, "fuzz driver: %llu/%llu mutations\n",
                         static_cast<unsigned long long>(i + 1),
                         static_cast<unsigned long long>(iterations));
    }
    if (iterations)
        std::fprintf(stderr,
                     "fuzz driver: %llu mutations, no crashes\n",
                     static_cast<unsigned long long>(iterations));
    std::remove(artifact.c_str());
    return 0;
}
