/**
 * @file
 * Fuzz target: the framed-JSON wire layer and every protocol verb.
 *
 * Attack surface: a network peer controls the raw byte stream the
 * server and worker sessions read — the 4-byte length prefix, the
 * frame payload, and the JSON message inside it.  The harness pushes
 * the input through a real pipe (the framing tests' transport), then
 * routes each decoded message through the same strict decoders the
 * server and client dispatch on, covering both the client verbs
 * (sweep/stats/cell/done) and the dispatch-subsystem worker verbs
 * (worker_hello/lease/cell_result/...).  std::invalid_argument is a
 * hostile frame, TransportError a dead peer; both are expected.
 */

#include "harness.hh"

#include <stdexcept>
#include <string>
#include <unistd.h>

#include "dispatch/dispatch_protocol.hh"
#include "service/protocol.hh"

namespace
{

/** The server/client/worker dispatch tables, flattened. */
void
routeMessage(const tlbpf::JsonValue &message, const std::string &type)
{
    using namespace tlbpf;
    if (type == "sweep") {
        SweepRequest request = SweepRequest::decode(message);
        try {
            (void)request.expand(); // parses every spec string
        } catch (const std::invalid_argument &) {
        }
    } else if (type == "cell") {
        CellReply reply = CellReply::decode(message);
        (void)reply.toResult();
    } else if (type == "done") {
        (void)DoneReply::decode(message);
    } else if (type == "stats") {
        (void)StatsReply::decode(message);
    } else if (type == "worker_hello") {
        (void)WorkerHello::decode(message);
    } else if (type == "worker_welcome") {
        (void)WorkerWelcome::decode(message);
    } else if (type == "lease_grant") {
        (void)LeaseGrant::decode(message);
    } else if (type == "lease") {
        (void)decodeLeaseRequest(message);
    } else if (type == "heartbeat") {
        (void)decodeHeartbeat(message);
    } else if (type == "cell_result") {
        (void)CellResultMsg::decode(message);
    } else if (type == "result_ok") {
        (void)decodeResultAck(message);
    }
    // Unknown types: the server answers with an error frame; nothing
    // to decode here.
}

} // namespace

extern "C" int
LLVMFuzzerTestOneInput(const std::uint8_t *data, std::size_t size)
{
    // A pipe buffer holds 64 KiB; writing more before anyone reads
    // would deadlock this single-threaded harness.  Real frames of
    // interest are far smaller.
    if (size > 60000)
        return 0;

    int fds[2];
    if (::pipe(fds) != 0)
        return 0;
    {
        std::size_t wrote = 0;
        while (wrote < size) {
            ssize_t n =
                ::write(fds[1], data + wrote, size - wrote);
            if (n <= 0)
                break;
            wrote += static_cast<std::size_t>(n);
        }
    }
    ::close(fds[1]); // EOF terminates the frame stream

    try {
        tlbpf::JsonValue message;
        std::string type;
        while (tlbpf::readMessage(fds[0], message, type))
            routeMessage(message, type);
    } catch (const std::invalid_argument &) {
        // Hostile frame: the session answers with an error frame.
    } catch (const tlbpf::TransportError &) {
        // Truncated mid-frame: the peer is simply gone.
    }
    ::close(fds[0]);
    return 0;
}
