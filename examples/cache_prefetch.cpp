/**
 * @file
 * Distance prefetching beyond TLBs: the paper notes DP "can possibly
 * be used in the context of caches, I/O etc.".  This example reuses
 * the core DistancePredictor, unchanged, to prefetch 64-byte cache
 * lines into a small fully-associative cache and measures how many
 * misses it converts into prefetch hits on a stencil-like stream.
 */

#include <cstdio>
#include <list>
#include <unordered_map>

#include "core/distance_predictor.hh"
#include "trace/ref_stream.hh"
#include "workload/generators.hh"

namespace
{

using namespace tlbpf;

constexpr std::uint64_t kLineBytes = 64;

/** Minimal fully-associative LRU cache of line numbers. */
class TinyCache
{
  public:
    explicit TinyCache(std::size_t lines) : _capacity(lines) {}

    bool
    access(std::uint64_t line)
    {
        auto it = _index.find(line);
        if (it == _index.end())
            return false;
        _lru.splice(_lru.begin(), _lru, it->second);
        return true;
    }

    void
    insert(std::uint64_t line)
    {
        if (access(line))
            return;
        if (_lru.size() >= _capacity) {
            _index.erase(_lru.back());
            _lru.pop_back();
        }
        _lru.push_front(line);
        _index[line] = _lru.begin();
    }

  private:
    std::size_t _capacity;
    std::list<std::uint64_t> _lru;
    std::unordered_map<std::uint64_t,
                       std::list<std::uint64_t>::iterator>
        _index;
};

} // namespace

int
main()
{
    using namespace tlbpf;

    // A three-array stencil sweep: the same distance-pattern structure
    // the paper's category (d) describes, at cache-line granularity.
    DistancePatternWalk::Config config;
    config.basePage = 1 << 16;
    config.regionPages = 1 << 22;
    config.pattern = {1, 200, -199, 1, 200, -199, 2};
    config.steps = 300000;
    config.refsPerStep = 2;
    config.passes = 1;
    config.seed = 11;
    DistancePatternWalk stream(config);

    TinyCache cache(512);          // demand-managed lines
    TinyCache prefetched(64);      // the "stream buffer"
    DistancePredictor dp(DistancePredictorConfig{
        TableConfig{256, TableAssoc::Direct}, 2});

    std::uint64_t misses = 0;
    std::uint64_t prefetch_hits = 0;
    std::vector<std::uint64_t> predictions;

    MemRef ref;
    while (stream.next(ref)) {
        // Treat page numbers from the walk as line numbers: the
        // predictor is unit-agnostic.
        std::uint64_t line = ref.vaddr / kLineBytes;
        if (cache.access(line))
            continue;
        ++misses;
        if (prefetched.access(line))
            ++prefetch_hits;
        cache.insert(line);

        predictions.clear();
        dp.observe(line, predictions);
        for (std::uint64_t target : predictions)
            prefetched.insert(target);
    }

    std::printf("cache-line distance prefetching demo\n");
    std::printf("misses:            %llu\n",
                static_cast<unsigned long long>(misses));
    std::printf("prefetch hits:     %llu\n",
                static_cast<unsigned long long>(prefetch_hits));
    std::printf("coverage:          %.3f\n",
                misses ? static_cast<double>(prefetch_hits) /
                             static_cast<double>(misses)
                       : 0.0);
    std::printf("table occupancy:   %zu rows (of %u)\n",
                dp.tableOccupancy(), dp.config().table.rows);
    return 0;
}
