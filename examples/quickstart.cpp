/**
 * @file
 * Quickstart: simulate one application model under distance
 * prefetching and print the headline metrics.
 *
 *   $ ./quickstart [app] [refs]
 *
 * Walks through the three steps every user of the library takes:
 * build a reference stream, pick a prefetcher spec, run the
 * simulator.
 */

#include <cstdio>
#include <cstdlib>

#include "sim/experiment.hh"

int
main(int argc, char **argv)
{
    using namespace tlbpf;

    std::string app = argc > 1 ? argv[1] : "swim";
    std::uint64_t refs =
        argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 1000000;

    // 1. A reference stream.  Here: one of the 56 built-in application
    //    models; anything implementing RefStream works.
    auto stream = buildApp(app, refs);
    std::printf("workload: %s (%s) — %s\n", app.c_str(),
                findApp(app).suite.c_str(), findApp(app).notes.c_str());

    // 2. A mechanism specification, resolved against the open
    //    MechanismRegistry.  The paper's recommended DP
    //    configuration: 256-row direct-mapped table, 2 slots.
    MechanismSpec dp = MechanismSpec::parse("dp(rows=256,assoc=dm)");

    // 3. Simulate: first without prefetching for the baseline, then
    //    with DP.
    MechanismSpec none = MechanismSpec::none();
    SimResult base = simulate(SimConfig{}, none, *stream);
    stream->reset();
    SimResult with_dp = simulate(SimConfig{}, dp, *stream);

    std::printf("references:          %llu\n",
                static_cast<unsigned long long>(base.refs));
    std::printf("TLB misses:          %llu (miss rate %.4f)\n",
                static_cast<unsigned long long>(base.misses),
                base.missRate());
    std::printf("footprint:           %llu pages\n",
                static_cast<unsigned long long>(base.footprintPages));
    std::printf("DP prediction accuracy: %.3f\n", with_dp.accuracy());
    std::printf("  (%llu of %llu misses were waiting in the prefetch "
                "buffer)\n",
                static_cast<unsigned long long>(with_dp.pbHits),
                static_cast<unsigned long long>(with_dp.misses));
    std::printf("prefetches issued:   %llu (%llu evicted unused)\n",
                static_cast<unsigned long long>(
                    with_dp.prefetchesIssued),
                static_cast<unsigned long long>(
                    with_dp.pbEvictedUnused));

    // And the cycle view (Table 3 methodology).
    TimingResult t_base = runTimed(app, none, refs);
    TimingResult t_dp = runTimed(app, dp, refs);
    std::printf("normalised cycles with DP: %.3f\n",
                static_cast<double>(t_dp.cycles) /
                    static_cast<double>(t_base.cycles));
    return 0;
}
