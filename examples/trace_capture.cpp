/**
 * @file
 * Trace capture and replay: record a workload model into the binary
 * trace format (the Etch-traces analogue), then replay it from disk
 * and verify the simulation results are bit-identical.  This is the
 * workflow for evaluating prefetchers against traces captured from
 * real machines.
 */

#include <cstdio>

#include "sim/experiment.hh"
#include "trace/trace_file.hh"

int
main(int argc, char **argv)
{
    using namespace tlbpf;

    std::string app = argc > 1 ? argv[1] : "mcf";
    const std::uint64_t refs = 500000;
    const std::string path = "/tmp/tlbpf_" + app + ".tpft";

    // Capture.
    {
        auto stream = buildApp(app, refs);
        std::uint64_t written = dumpTrace(*stream, path);
        std::printf("captured %llu references of %s into %s\n",
                    static_cast<unsigned long long>(written),
                    app.c_str(), path.c_str());
    }

    // Replay from disk and compare against the live generator.
    MechanismSpec dp = MechanismSpec::parse("DP,256,D");

    auto live = buildApp(app, refs);
    SimResult from_live = simulate(SimConfig{}, dp, *live);

    TraceReader replay(path);
    SimResult from_trace = simulate(SimConfig{}, dp, replay);

    std::printf("live:   misses %llu, accuracy %.4f\n",
                static_cast<unsigned long long>(from_live.misses),
                from_live.accuracy());
    std::printf("replay: misses %llu, accuracy %.4f\n",
                static_cast<unsigned long long>(from_trace.misses),
                from_trace.accuracy());
    bool identical = from_live.misses == from_trace.misses &&
                     from_live.pbHits == from_trace.pbHits;
    std::printf("bit-identical results: %s\n",
                identical ? "yes" : "NO (bug!)");
    std::remove(path.c_str());
    return identical ? 0 : 1;
}
