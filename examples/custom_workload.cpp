/**
 * @file
 * Bring-your-own-workload: implement RefStream for an application the
 * library does not model — here a blocked matrix-matrix product — and
 * compare all five mechanisms on it.
 *
 * This is the path a user takes to evaluate TLB prefetching for their
 * own kernel before touching hardware.
 */

#include <cstdio>

#include "sim/experiment.hh"

namespace
{

using namespace tlbpf;

/**
 * Reference stream of a blocked matrix multiply C = A * B over
 * row-major double matrices, emitting one reference per element
 * access with per-array access PCs.
 */
class BlockedMatmulStream : public RefStream
{
  public:
    BlockedMatmulStream(std::uint32_t n, std::uint32_t block)
        : _n(n), _block(block)
    {
        reset();
    }

    bool
    next(MemRef &ref) override
    {
        if (_done)
            return false;
        // Emit references in the order a blocked i-k-j loop nest
        // touches memory: A[i][k], B[k][j], C[i][j].
        switch (_phase) {
          case 0:
            ref.vaddr = _baseA + 8ull * (_i * _n + _k);
            ref.pc = 0x401000;
            break;
          case 1:
            ref.vaddr = _baseB + 8ull * (_k * _n + _j);
            ref.pc = 0x401004;
            break;
          default:
            ref.vaddr = _baseC + 8ull * (_i * _n + _j);
            ref.pc = 0x401008;
            break;
        }
        ref.isWrite = _phase == 2;
        ref.icount = _icount++;
        advance();
        return true;
    }

    void
    reset() override
    {
        _bi = _bj = _bk = 0;
        _i = _j = _k = 0;
        _phase = 0;
        _icount = 0;
        _done = false;
        syncToBlock();
    }

    std::string
    describe() const override
    {
        return "blocked-matmul(n=" + std::to_string(_n) + ",b=" +
               std::to_string(_block) + ")";
    }

  private:
    void
    syncToBlock()
    {
        _i = _bi;
        _j = _bj;
        _k = _bk;
    }

    void
    advance()
    {
        if (++_phase < 3)
            return;
        _phase = 0;
        // Innermost j, then k, then i within the block; then blocks.
        if (++_j < std::min(_bj + _block, _n))
            return;
        _j = _bj;
        if (++_k < std::min(_bk + _block, _n))
            return;
        _k = _bk;
        if (++_i < std::min(_bi + _block, _n))
            return;
        _i = _bi;
        _bj += _block;
        if (_bj >= _n) {
            _bj = 0;
            _bk += _block;
            if (_bk >= _n) {
                _bk = 0;
                _bi += _block;
                if (_bi >= _n) {
                    _done = true;
                    return;
                }
            }
        }
        syncToBlock();
    }

    std::uint32_t _n;
    std::uint32_t _block;
    Addr _baseA = 1ull << 32;
    Addr _baseB = 2ull << 32;
    Addr _baseC = 3ull << 32;

    std::uint32_t _bi = 0, _bj = 0, _bk = 0;
    std::uint32_t _i = 0, _j = 0, _k = 0;
    int _phase = 0;
    std::uint64_t _icount = 0;
    bool _done = false;
};

} // namespace

int
main()
{
    using namespace tlbpf;

    // 1024x1024 doubles = 8 MB per matrix: far beyond a 128-entry
    // TLB's 512 KB reach.
    BlockedMatmulStream stream(256, 32);

    std::printf("workload: %s\n", stream.describe().c_str());
    std::printf("%-14s %10s %10s %12s\n", "mechanism", "accuracy",
                "missrate", "memops/miss");

    for (const char *text : {"none", "SP,1", "ASP,256,D", "MP,256,D",
                             "RP", "DP,256,D"}) {
        MechanismSpec spec = MechanismSpec::parse(text);
        stream.reset();
        SimResult r = simulate(SimConfig{}, spec, stream);
        std::printf("%-14s %10.3f %10.5f %12.2f\n",
                    spec.label().c_str(), r.accuracy(), r.missRate(),
                    r.memOpsPerMiss());
    }
    return 0;
}
